"""Batched MSP-SQP vs the sequential start-by-start loop.

The batched path must be a pure wall-clock optimisation: same clipping,
same per-start SQP mathematics, same refined fills — only the network
passes are stacked.
"""

import numpy as np
import pytest

from repro.core import QualityModel, msp_sqp
from repro.optimize import SqpOptimizer, random_starting_points_stacked


@pytest.fixture(scope="module")
def model(small_problem, trained_surrogate):
    return QualityModel(small_problem, trained_surrogate)


@pytest.fixture(scope="module")
def starts(small_problem):
    return random_starting_points_stacked(
        small_problem.lower, small_problem.upper, 3, seed=4
    )


class TestEvaluateMany:
    def test_rows_match_sequential_evaluate(self, model, starts):
        values, grads = model.evaluate_many(starts)
        for k in range(starts.shape[0]):
            single = model.evaluate(starts[k])
            assert values[k] == pytest.approx(single.quality, abs=1e-10)
            np.testing.assert_allclose(grads[k], single.gradient,
                                       rtol=0, atol=1e-10)

    def test_grad_mask(self, model, starts):
        mask = np.array([False, True, False])
        values, grads = model.evaluate_many(starts, need_grad=mask)
        assert np.all(grads[0] == 0.0) and np.all(grads[2] == 0.0)
        assert np.any(grads[1] != 0.0)
        assert np.all(np.isfinite(values))

    def test_counts_evaluations_per_row(self, model, starts):
        before = model.evaluations
        model.evaluate_many(starts, need_grad=False)
        assert model.evaluations == before + starts.shape[0]

    def test_rejects_unstacked(self, model, small_problem):
        with pytest.raises(ValueError):
            model.evaluate_many(np.zeros(small_problem.layout.shape))


class TestBatchedMspSqp:
    def test_same_best_fill_as_sequential(self, model, starts):
        opt = SqpOptimizer(max_iter=15, tol=1e-9)
        seq = msp_sqp(model, list(starts), opt, batched=False)
        bat = msp_sqp(model, starts, opt, batched=True)
        np.testing.assert_allclose(bat.best_fill, seq.best_fill,
                                   rtol=0, atol=1e-8)
        assert bat.best_quality == pytest.approx(seq.best_quality, abs=1e-10)
        for a, b in zip(seq.results, bat.results):
            assert a.iterations == b.iterations
            assert a.converged == b.converged
            assert a.value == pytest.approx(b.value, abs=1e-10)

    def test_single_start_falls_back_to_sequential(self, model, starts):
        opt = SqpOptimizer(max_iter=5, tol=1e-9)
        outcome = msp_sqp(model, starts[:1], opt, batched=True)
        assert len(outcome.results) == 1
        assert np.isfinite(outcome.best_quality)
