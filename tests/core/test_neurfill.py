"""Integration tests for QualityModel, MSP-SQP and the NeurFill facade."""

import numpy as np
import pytest

from repro.core import NeurFill, QualityModel, msp_sqp
from repro.optimize import SqpOptimizer


@pytest.fixture(scope="module")
def model(small_problem, trained_surrogate):
    return QualityModel(small_problem, trained_surrogate)


class TestQualityModel:
    def test_evaluation_components(self, model, small_problem):
        ev = model.evaluate(np.zeros(small_problem.layout.shape))
        assert np.isfinite(ev.quality)
        assert ev.quality == pytest.approx(
            ev.planarity.s_plan + ev.degradation.s_pd
        )
        assert ev.gradient.shape == small_problem.layout.shape

    def test_counts_evaluations(self, model, small_problem):
        before = model.evaluations
        model.quality(np.zeros(small_problem.layout.shape))
        model.value_and_grad(np.zeros(small_problem.layout.shape))
        assert model.evaluations == before + 2

    def test_gradient_none_without_request(self, model, small_problem):
        ev = model.evaluate(np.zeros(small_problem.layout.shape),
                            want_grad=False)
        assert ev.gradient is None

    def test_backprop_matches_fd_on_quality(self, model, small_problem):
        """The combined quality gradient (surrogate backprop + analytic
        PD) must match finite differences through the full model."""
        rng = np.random.default_rng(0)
        x0 = 0.4 * small_problem.upper
        value, grad = model.value_and_grad(x0)
        eps = 1.0
        for _ in range(4):
            k = rng.integers(0, x0.size)
            hi = x0.ravel().copy(); hi[k] += eps
            lo = x0.ravel().copy(); lo[k] -= eps
            fd = (model.quality(hi.reshape(x0.shape))
                  - model.quality(lo.reshape(x0.shape))) / (2 * eps)
            assert grad.ravel()[k] == pytest.approx(fd, rel=1e-2, abs=1e-9)


class TestMspSqp:
    def test_improves_over_starts(self, model, small_problem):
        rng = np.random.default_rng(1)
        starts = [rng.random(small_problem.layout.shape) * small_problem.upper
                  for _ in range(2)]
        start_q = max(model.quality(s) for s in starts)
        outcome = msp_sqp(model, starts, SqpOptimizer(max_iter=30, tol=1e-9))
        assert outcome.best_quality >= start_q - 1e-9
        assert len(outcome.results) == 2
        assert outcome.evaluations > 0

    def test_empty_starts_rejected(self, model):
        with pytest.raises(ValueError):
            msp_sqp(model, [])

    def test_best_fill_feasible(self, model, small_problem):
        outcome = msp_sqp(model, [np.zeros(small_problem.layout.shape)],
                          SqpOptimizer(max_iter=10, tol=1e-9))
        assert small_problem.feasible(outcome.best_fill, atol=1e-6)


class TestNeurFill:
    @pytest.fixture(scope="class")
    def neurfill(self, small_problem, trained_surrogate, simulator):
        return NeurFill(
            small_problem, trained_surrogate,
            optimizer=SqpOptimizer(max_iter=25, tol=1e-9),
            simulator=simulator,
        )

    def test_pkb_run(self, neurfill, small_problem):
        result = neurfill.run_pkb(num_candidates=5)
        assert result.method == "neurfill-pkb"
        assert small_problem.feasible(result.fill, atol=1e-6)
        assert result.runtime_s > 0
        assert result.evaluations > 0
        assert "pkb_targets" in result.extras
        assert result.planarity is not None
        assert result.degradation is not None

    def test_pkb_refinement_never_regresses(self, neurfill, small_problem,
                                            simulator):
        """With a simulator attached, the returned fill is at least as
        good as the PKB starting point under the simulator's judgement
        (the refine-vs-start guard)."""
        from repro.core import evaluate_solution
        from repro.core.pkb import pkb_starting_point

        result = neurfill.run_pkb(num_candidates=5)
        start = pkb_starting_point(
            small_problem.layout,
            lambda x: evaluate_solution(small_problem, x, "probe",
                                        simulator=simulator).quality,
            5,
        )
        final_q = evaluate_solution(small_problem, result.fill, "final",
                                    simulator=simulator).quality
        assert final_q >= start.quality - 1e-9

    def test_multimodal_run(self, neurfill, small_problem):
        result = neurfill.run_multimodal(max_evaluations=120, top_k=2, seed=0)
        assert result.method == "neurfill-mm"
        assert small_problem.feasible(result.fill, atol=1e-6)
        assert result.starts == 2
        assert result.extras["nmmso_optima"] >= 1
        assert len(result.extras["refined_qualities"]) == 2

    def test_multimodal_include_pkb(self, neurfill):
        result = neurfill.run_multimodal(max_evaluations=80, top_k=1,
                                         include_pkb=True, seed=1)
        assert result.starts == 2

    def test_run_from_start(self, neurfill, small_problem):
        start = 0.5 * small_problem.upper
        result = neurfill.run_from_start(start, method="custom")
        assert result.method == "custom"
        assert result.quality >= 0

    def test_improves_quality_over_nofill(self, neurfill, small_problem, simulator):
        """The headline behaviour: synthesis beats no fill on the real
        simulator's quality score."""
        from repro.core import evaluate_solution
        result = neurfill.run_pkb(num_candidates=7)
        filled = evaluate_solution(small_problem, result.fill, "f", simulator)
        empty = evaluate_solution(
            small_problem, np.zeros(small_problem.layout.shape), "e", simulator
        )
        assert filled.quality > empty.quality
