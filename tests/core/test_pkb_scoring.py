"""Tests for PKB starting-point generation and solution scoring."""

import numpy as np
import pytest

from repro.core import (
    ScoreCoefficients,
    estimate_output_file_mb,
    evaluate_solution,
    fill_for_target_density,
    pkb_starting_point,
    planarity_metrics,
    target_density_range,
)
from repro.core.problem import FillProblem
from repro.layout import make_design_a


@pytest.fixture(scope="module")
def layout():
    return make_design_a(rows=8, cols=8)


class TestFillForTargetDensity:
    def test_eq18_cases(self, layout):
        rho = layout.density_stack()
        slack = layout.slack_stack()
        area = layout.grid.window_area
        targets = np.full(layout.num_layers, 0.5)
        fill = fill_for_target_density(layout, targets)
        # Case 1: already denser than target -> no fill.
        dense = rho >= 0.5
        assert np.all(fill[dense] == 0.0)
        # Case 2: cannot reach target -> filled to slack.
        unreachable = (rho + slack / area) < 0.5
        np.testing.assert_allclose(fill[unreachable], slack[unreachable])
        # Case 3: exact top-up elsewhere.
        mid = ~dense & ~unreachable
        np.testing.assert_allclose(
            fill[mid], (0.5 - rho[mid]) * area, rtol=1e-12
        )

    def test_fill_feasible(self, layout):
        fill = fill_for_target_density(layout, np.full(3, 0.8))
        layout.validate_fill(fill)

    def test_bad_targets_shape(self, layout):
        with pytest.raises(ValueError):
            fill_for_target_density(layout, np.zeros(5))

    def test_target_density_range(self, layout):
        lo, hi = target_density_range(layout)
        assert lo.shape == (3,)
        assert np.all(hi > lo)
        assert np.all(hi <= 1.0)


class TestPkbSearch:
    def test_picks_quality_maximiser(self, layout):
        """With a quality that rewards total fill, PKB picks max target."""
        result = pkb_starting_point(layout, lambda x: float(x.sum()),
                                    num_candidates=5)
        lo, hi = target_density_range(layout)
        np.testing.assert_allclose(result.targets, hi)
        assert result.candidates_evaluated == 5

    def test_picks_zero_when_fill_penalised(self, layout):
        result = pkb_starting_point(layout, lambda x: -float(x.sum()),
                                    num_candidates=5)
        assert result.fill.sum() == 0.0

    def test_quadratic_preference_interior(self, layout):
        """Quality peaked at a mid fill level selects an interior target."""
        slack_total = layout.slack_stack().sum()
        target_fill = 0.5 * slack_total

        def quality(x):
            return -abs(float(x.sum()) - target_fill)

        result = pkb_starting_point(layout, quality, num_candidates=9)
        assert 0.2 < result.fill.sum() / slack_total < 0.8

    def test_candidate_count_validation(self, layout):
        with pytest.raises(ValueError):
            pkb_starting_point(layout, lambda x: 0.0, num_candidates=0)


class TestPlanarityMetrics:
    def test_flat_stack(self):
        h = np.ones((2, 4, 4))
        dh, sigma, line, ol = planarity_metrics(h)
        assert dh == 0.0 and sigma == 0.0 and line == 0.0 and ol == 0.0

    def test_delta_h_is_max_layer_range(self):
        h = np.zeros((2, 3, 3))
        h[0, 0, 0] = 5.0
        h[1, 0, 0] = 3.0
        dh, _, _, _ = planarity_metrics(h)
        assert dh == 5.0


class TestEvaluateSolution:
    def test_scores_in_range(self, small_problem, simulator):
        fill = 0.5 * small_problem.layout.slack_stack()
        s = evaluate_solution(small_problem, fill, "test", simulator,
                              runtime_s=1.0, memory_gb=0.5)
        for attr in ("score_performance", "score_fill", "score_variation",
                     "score_line", "score_outliers", "score_filesize",
                     "score_runtime", "score_memory", "quality", "overall"):
            value = getattr(s, attr)
            assert 0.0 <= value <= 1.0, attr

    def test_runtime_memory_affect_overall_not_quality(self, small_problem, simulator):
        fill = np.zeros(small_problem.layout.shape)
        fast = evaluate_solution(small_problem, fill, "f", simulator, runtime_s=0.0)
        slow = evaluate_solution(small_problem, fill, "s", simulator,
                                 runtime_s=1e9, memory_gb=1e9)
        assert fast.quality == pytest.approx(slow.quality)
        assert fast.overall > slow.overall

    def test_quality_normalised_vs_overall(self, small_problem, simulator):
        fill = np.zeros(small_problem.layout.shape)
        s = evaluate_solution(small_problem, fill, "x", simulator)
        c = small_problem.coefficients
        weighted = (
            c.alpha_overlay * s.score_performance + c.alpha_fill * s.score_fill
            + c.alpha_sigma * s.score_variation + c.alpha_line * s.score_line
            + c.alpha_outlier * s.score_outliers
        )
        assert s.quality == pytest.approx(weighted / c.quality_alpha_total)

    def test_precomputed_result_used(self, small_problem, simulator):
        fill = np.zeros(small_problem.layout.shape)
        res = simulator.simulate_layout(small_problem.layout, fill)
        s1 = evaluate_solution(small_problem, fill, "x", cmp_result=res)
        s2 = evaluate_solution(small_problem, fill, "x", simulator=simulator)
        assert s1.delta_h == pytest.approx(s2.delta_h)

    def test_output_file_grows_with_fill(self, layout):
        fill = 0.5 * layout.slack_stack()
        out = estimate_output_file_mb(layout, fill)
        assert out > layout.file_size_mb
        assert estimate_output_file_mb(layout, np.zeros(layout.shape)) == pytest.approx(
            layout.file_size_mb
        )
