"""Tests for the problem formulation and Table II coefficients."""

import numpy as np
import pytest

from repro.core import FillProblem, ScoreCoefficients, paper_table2
from repro.layout import make_design_a


class TestScoreCoefficients:
    def test_defaults_are_design_a(self):
        c = ScoreCoefficients()
        assert c.beta_sigma == 209.0
        assert c.alpha_sigma == 0.2

    def test_alpha_totals(self):
        c = ScoreCoefficients()
        assert c.quality_alpha_total == pytest.approx(0.75)
        assert c.overall_alpha_total == pytest.approx(1.0)

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            ScoreCoefficients(beta_sigma=-1.0)
        with pytest.raises(ValueError):
            ScoreCoefficients(beta_runtime=0.0)

    def test_planarity_weights_subset(self):
        c = ScoreCoefficients()
        w = c.planarity_weights()
        assert w.alpha_sigma == c.alpha_sigma
        assert w.beta_line == c.beta_line
        assert w.beta_outlier == c.beta_outlier

    @pytest.mark.parametrize("design,beta_ov,beta_sigma,beta_fs", [
        ("A", 2400724.0, 209.0, 32.8),
        ("B", 6596491.0, 133.0, 1897.4),
        ("C", 3232445.0, 105.0, 161.2),
    ])
    def test_paper_table2_rows(self, design, beta_ov, beta_sigma, beta_fs):
        c = paper_table2(design)
        assert c.beta_overlay == beta_ov
        assert c.beta_fill == beta_ov  # Table II: equal betas
        assert c.beta_sigma == beta_sigma
        assert c.beta_filesize == beta_fs
        assert c.beta_runtime == 1200.0  # 20 min
        assert c.beta_memory == 8.0

    def test_paper_table2_unknown(self):
        with pytest.raises(ValueError):
            paper_table2("D")

    def test_calibrated_betas_positive(self, small_layout, simulator):
        c = ScoreCoefficients.calibrated(small_layout, simulator)
        for name, value in vars(c).items():
            if name.startswith("beta"):
                assert value > 0, name

    def test_calibrated_headroom_scales(self, small_layout, simulator):
        c1 = ScoreCoefficients.calibrated(small_layout, simulator, headroom=1.0)
        c2 = ScoreCoefficients.calibrated(small_layout, simulator, headroom=2.0)
        assert c2.beta_sigma == pytest.approx(2 * c1.beta_sigma)
        assert c2.beta_line == pytest.approx(2 * c1.beta_line)

    def test_calibrated_override(self, small_layout, simulator):
        c = ScoreCoefficients.calibrated(small_layout, simulator,
                                         beta_runtime=33.0)
        assert c.beta_runtime == 33.0

    def test_calibrated_bad_headroom(self, small_layout, simulator):
        with pytest.raises(ValueError):
            ScoreCoefficients.calibrated(small_layout, simulator, headroom=0.0)

    def test_calibrated_nofill_scores_half(self, small_layout, simulator):
        """With headroom 2, the unfilled layout scores 0.5 on sigma."""
        c = ScoreCoefficients.calibrated(small_layout, simulator, headroom=2.0)
        h = simulator.simulate_layout(small_layout).height
        sigma0 = sum(np.var(h[l]) for l in range(h.shape[0]))
        assert 1.0 - sigma0 / c.beta_sigma == pytest.approx(0.5, abs=1e-9)


class TestFillProblem:
    def test_bounds(self, small_problem):
        assert np.all(small_problem.lower == 0)
        np.testing.assert_array_equal(
            small_problem.upper, small_problem.layout.slack_stack()
        )
        assert small_problem.num_variables == 300

    def test_clip(self, small_problem):
        huge = np.full(small_problem.layout.shape, 1e9)
        clipped = small_problem.clip(huge)
        assert small_problem.feasible(clipped)

    def test_feasible(self, small_problem):
        assert small_problem.feasible(np.zeros(small_problem.layout.shape))
        assert not small_problem.feasible(
            np.full(small_problem.layout.shape, -1.0)
        )
        assert not small_problem.feasible(np.zeros((1, 2, 2)))
