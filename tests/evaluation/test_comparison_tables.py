"""Tests for the comparison harness and table formatters."""

import numpy as np
import pytest

from repro.baselines import lin_fill
from repro.core import ScoreCoefficients, paper_table2
from repro.evaluation import (
    format_histogram,
    format_table1,
    format_table2,
    format_table3,
    run_comparison,
    run_method,
)


class TestRunMethod:
    def test_scores_and_memory(self, small_problem, simulator):
        row = run_method(small_problem, lambda p: lin_fill(p), simulator)
        assert row.score.method == "lin"
        assert row.memory_gb >= 0
        assert 0 <= row.score.overall <= 1

    def test_memory_tracking_optional(self, small_problem, simulator):
        row = run_method(small_problem, lambda p: lin_fill(p), simulator,
                         track_memory=False)
        assert row.memory_gb == 0.0


class TestRunComparison:
    def test_nofill_row_included(self, small_problem, simulator):
        rows = run_comparison(small_problem, {"lin": lambda p: lin_fill(p)},
                              simulator)
        assert rows[0].score.method == "no-fill"
        assert rows[0].result.fill.sum() == 0
        assert rows[1].score.method == "lin"

    def test_nofill_row_excluded(self, small_problem, simulator):
        rows = run_comparison(small_problem, {"lin": lambda p: lin_fill(p)},
                              simulator, include_nofill=False)
        assert len(rows) == 1

    def test_empty_methods_rejected(self, small_problem, simulator):
        with pytest.raises(ValueError):
            run_comparison(small_problem, {}, simulator)

    def test_method_name_overrides_label(self, small_problem, simulator):
        rows = run_comparison(
            small_problem, {"my-lin": lambda p: lin_fill(p)}, simulator,
            include_nofill=False,
        )
        assert rows[0].score.method == "my-lin"


class TestFormatters:
    def test_table3_contains_all_rows(self, small_problem, simulator):
        rows = run_comparison(small_problem, {"lin": lambda p: lin_fill(p)},
                              simulator)
        text = format_table3([r.score for r in rows], title="T")
        assert "no-fill" in text
        assert "lin" in text
        assert "Quality" in text

    def test_table1_speedups(self):
        text = format_table1(sim_eval_s=4.7, sim_grad_s=34100.0,
                             nn_eval_s=0.025, nn_grad_s=0.067)
        assert "Objective Evaluation" in text
        assert "Gradient Calculation" in text
        # 34100/64/0.067 ~ 7953x appears
        assert "7952." in text or "7953." in text

    def test_table2_lists_designs(self):
        text = format_table2({
            "A": paper_table2("A"),
            "B": paper_table2("B"),
            "C": paper_table2("C"),
        })
        assert "2400724" in text
        assert "6596491" in text
        assert text.count("\n") >= 4

    def test_table2_custom(self, small_coeffs):
        text = format_table2({"A-scaled": small_coeffs})
        assert "A-scaled" in text

    def test_histogram(self):
        counts, edges = np.histogram([0.01, 0.02, 0.02, 0.05], bins=4)
        text = format_histogram(counts, edges, title="Fig9")
        assert "Fig9" in text
        assert "#" in text
