"""Tests for dummy fill insertion (shapes from synthesis results)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.insertion import (
    insert_dummies,
    load_shapes,
    rasterise_shapes,
    save_shapes,
    shapes_from_dict,
    shapes_to_dict,
    window_capacity,
)
from repro.layout import make_design_a


@pytest.fixture(scope="module")
def layout():
    return make_design_a(rows=6, cols=6)


@pytest.fixture(scope="module")
def fill(layout):
    rng = np.random.default_rng(0)
    return 0.3 * rng.random(layout.shape) * layout.slack_stack()


class TestWindowCapacity:
    def test_basic(self):
        # 100 um window, 2 um dummies, 0.5 um spacing -> pitch 2.5,
        # (100 - 0.5) // 2.5 = 39 per axis.
        assert window_capacity(100.0, 2.0, 0.5) == 39 * 39

    def test_oversized_dummy(self):
        assert window_capacity(10.0, 20.0, 0.5) == 0


class TestInsertDummies:
    def test_area_matches_within_quantisation(self, layout, fill):
        result = insert_dummies(layout, fill)
        assert result.quantisation_error <= 0.5 * 4.0  # half a dummy
        np.testing.assert_allclose(
            result.placed_area.sum(), fill.sum(), rtol=0.01
        )

    def test_shapes_inside_their_windows(self, layout, fill):
        result = insert_dummies(layout, fill)
        win = layout.grid.window_um
        for shape in result.shapes[:500]:
            i, j = layout.grid.window_of(
                0.5 * (shape.rect.x0 + shape.rect.x1),
                0.5 * (shape.rect.y0 + shape.rect.y1),
            )
            assert j * win <= shape.rect.x0 and shape.rect.x1 <= (j + 1) * win
            assert i * win <= shape.rect.y0 and shape.rect.y1 <= (i + 1) * win

    def test_no_overlaps_within_window(self, layout):
        fill = np.zeros(layout.shape)
        fill[0, 0, 0] = 400.0  # 100 dummies in one window
        result = insert_dummies(layout, fill)
        rects = [s.rect for s in result.shapes]
        assert len(rects) == 100
        for a in range(0, len(rects), 7):
            for b in range(a + 1, len(rects), 11):
                assert not rects[a].intersects(rects[b])

    def test_rasterise_matches_placed(self, layout, fill):
        result = insert_dummies(layout, fill)
        raster = rasterise_shapes(layout, result.shapes)
        np.testing.assert_allclose(raster, result.placed_area, rtol=1e-12)

    def test_capacity_exceeded_raises(self, layout):
        fill = np.zeros(layout.shape)
        fill[0, 0, 0] = 9000.0
        with pytest.raises(ValueError):
            insert_dummies(layout, fill, dummy_side=30.0, spacing=5.0)

    def test_invalid_params(self, layout, fill):
        with pytest.raises(ValueError):
            insert_dummies(layout, fill, dummy_side=0.0)
        with pytest.raises(ValueError):
            insert_dummies(layout, fill, spacing=-1.0)

    def test_infeasible_fill_rejected(self, layout):
        with pytest.raises(ValueError):
            insert_dummies(layout, np.full(layout.shape, 1e9))

    @given(scale=st.floats(0.0, 0.5))
    @settings(max_examples=10, deadline=None)
    def test_property_placed_never_exceeds_capacity_area(self, scale):
        lay = make_design_a(rows=4, cols=4)
        fill = scale * lay.slack_stack()
        result = insert_dummies(lay, fill)
        cap = window_capacity(lay.grid.window_um, 2.0, 0.5) * 4.0
        assert np.all(result.placed_area <= cap + 1e-9)


class TestShapeIO:
    def test_roundtrip_file(self, layout, fill, tmp_path):
        result = insert_dummies(layout, fill)
        path = tmp_path / "shapes.json"
        save_shapes(result.shapes, path)
        back = load_shapes(path)
        assert back == result.shapes

    def test_dict_roundtrip(self, layout, fill):
        result = insert_dummies(layout, fill)
        assert shapes_from_dict(shapes_to_dict(result.shapes)) == result.shapes

    def test_bad_version(self):
        with pytest.raises(ValueError):
            shapes_from_dict({"format_version": 99, "shapes": []})
