"""Tests for training-data assembly (Fig. 8) and layout JSON persistence."""

import numpy as np
import pytest

from repro.layout import (
    generate_training_layouts,
    layout_from_dict,
    layout_to_dict,
    load_layout,
    make_design_a,
    make_design_b,
    random_legal_fill,
    save_layout,
    tile_to_size,
    window_pool,
)
from repro.layout.assembly import assemble_layout


class TestWindowPool:
    def test_pool_size(self):
        a = make_design_a(rows=8, cols=8)
        b = make_design_b(rows=6, cols=6)
        pool = window_pool([a, b])
        assert pool["density"].shape == (8 * 8 + 6 * 6, 3)
        assert set(pool) == {"density", "slack", "perimeter", "width"}

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            window_pool([])

    def test_mismatched_layer_counts_rejected(self):
        a = make_design_a(rows=6, cols=6)
        single = make_design_a(rows=6, cols=6)
        single.layers.pop()
        with pytest.raises(ValueError):
            window_pool([a, single])


class TestAssembly:
    def test_assembled_shape(self):
        a = make_design_a(rows=8, cols=8)
        pool = window_pool([a])
        rng = np.random.default_rng(0)
        lay = assemble_layout(pool, 12, 10, a.trench_depths(), rng)
        assert lay.shape == (3, 12, 10)

    def test_assembled_windows_come_from_pool(self):
        a = make_design_a(rows=8, cols=8)
        pool = window_pool([a])
        rng = np.random.default_rng(0)
        lay = assemble_layout(pool, 5, 5, a.trench_depths(), rng)
        source = set(np.round(pool["density"][:, 0], 12))
        assembled = set(np.round(lay.layers[0].density.ravel(), 12))
        assert assembled <= source

    def test_random_legal_fill_within_slack(self):
        a = make_design_a(rows=8, cols=8)
        fill = random_legal_fill(a, np.random.default_rng(0))
        a.validate_fill(fill)

    def test_generate_training_layouts(self):
        a = make_design_a(rows=8, cols=8)
        pairs = generate_training_layouts([a], count=3, rows=6, cols=6, seed=1)
        assert len(pairs) == 3
        for lay, fill in pairs:
            assert lay.shape == (3, 6, 6)
            lay.validate_fill(fill)

    def test_generation_deterministic(self):
        a = make_design_a(rows=8, cols=8)
        p1 = generate_training_layouts([a], 2, 6, 6, seed=42)
        p2 = generate_training_layouts([a], 2, 6, 6, seed=42)
        np.testing.assert_array_equal(p1[0][1], p2[0][1])
        np.testing.assert_array_equal(
            p1[1][0].density_stack(), p2[1][0].density_stack()
        )


class TestTiling:
    def test_tile_up(self):
        a = make_design_a(rows=6, cols=6)
        t = tile_to_size(a, 16, 16)
        assert t.grid.shape == (16, 16)
        np.testing.assert_array_equal(
            t.layers[0].density[:6, :6], a.layers[0].density
        )
        # Periodic duplication.
        np.testing.assert_array_equal(
            t.layers[0].density[6:12, :6], a.layers[0].density
        )

    def test_tile_crop(self):
        a = make_design_a(rows=8, cols=8)
        t = tile_to_size(a, 5, 5)
        assert t.grid.shape == (5, 5)
        np.testing.assert_array_equal(
            t.layers[1].density, a.layers[1].density[:5, :5]
        )


class TestLayoutIO:
    def test_roundtrip_exact(self, tmp_path):
        a = make_design_a(rows=6, cols=7)
        path = tmp_path / "a.json"
        save_layout(a, path)
        back = load_layout(path)
        assert back.name == a.name
        assert back.grid.shape == a.grid.shape
        assert back.file_size_mb == a.file_size_mb
        np.testing.assert_array_equal(back.density_stack(), a.density_stack())
        np.testing.assert_array_equal(back.slack_stack(), a.slack_stack())
        np.testing.assert_array_equal(back.perimeter_stack(), a.perimeter_stack())

    def test_dict_roundtrip(self):
        a = make_design_a(rows=4, cols=4)
        d = layout_to_dict(a)
        back = layout_from_dict(d)
        np.testing.assert_array_equal(back.width_stack(), a.width_stack())
        assert back.trench_depths().tolist() == a.trench_depths().tolist()

    def test_bad_version_rejected(self):
        a = make_design_a(rows=4, cols=4)
        d = layout_to_dict(a)
        d["format_version"] = 99
        with pytest.raises(ValueError):
            layout_from_dict(d)
