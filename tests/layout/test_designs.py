"""Tests for the synthetic benchmark design generators."""

import numpy as np
import pytest

from repro.layout import (
    MAX_FILL_DENSITY,
    make_design,
    make_design_a,
    make_design_b,
    make_design_c,
    make_two_fillable_window_layout,
)


@pytest.mark.parametrize("builder,name", [
    (make_design_a, "design_a"),
    (make_design_b, "design_b"),
    (make_design_c, "design_c"),
])
class TestDesignGenerators:
    def test_shape_and_layers(self, builder, name):
        lay = builder(rows=16, cols=12)
        assert lay.name == name
        assert lay.num_layers == 3
        assert lay.grid.shape == (16, 12)

    def test_density_in_range(self, builder, name):
        lay = builder(rows=16, cols=12)
        d = lay.density_stack()
        assert np.all(d >= 0.0) and np.all(d <= 0.95)

    def test_slack_respects_max_density(self, builder, name):
        lay = builder(rows=16, cols=12)
        d = lay.density_stack()
        s = lay.slack_stack()
        # Filling all slack must never push density past the cap.
        post = d + s / lay.grid.window_area
        assert np.all(post <= MAX_FILL_DENSITY + 1e-9)

    def test_deterministic_for_seed(self, builder, name):
        a = builder(rows=12, cols=12, seed=5)
        b = builder(rows=12, cols=12, seed=5)
        np.testing.assert_array_equal(a.density_stack(), b.density_stack())
        np.testing.assert_array_equal(a.slack_stack(), b.slack_stack())

    def test_different_seeds_differ(self, builder, name):
        a = builder(rows=12, cols=12, seed=1)
        b = builder(rows=12, cols=12, seed=2)
        assert not np.array_equal(a.slack_stack(), b.slack_stack())

    def test_positive_perimeter_where_dense(self, builder, name):
        lay = builder(rows=16, cols=12)
        per = lay.perimeter_stack()
        d = lay.density_stack()
        assert np.all(per[d > 0.05] > 0)


def test_designs_have_distinct_density_structure():
    """A is blocky wedges, B is periodic fabric, C is heterogeneous macros."""
    a = make_design_a(rows=24, cols=24)
    b = make_design_b(rows=24, cols=24)
    c = make_design_c(rows=24, cols=24)
    # C has the widest density spread (sparse periphery vs dense SRAM).
    spread = {l.name: float(np.ptp(l.density_stack()[0])) for l in (a, b, c)}
    assert spread["design_c"] > spread["design_b"]


def test_make_design_registry():
    lay = make_design("A", scale=0.25)
    assert lay.name == "design_a"
    assert lay.grid.rows == 12
    with pytest.raises(ValueError):
        make_design("Z")


def test_make_design_file_sizes_match_paper():
    assert make_design("A", scale=0.2).file_size_mb == pytest.approx(16.4)
    assert make_design("B", scale=0.2).file_size_mb == pytest.approx(948.7)
    assert make_design("C", scale=0.2).file_size_mb == pytest.approx(80.6)


class TestTwoWindowToy:
    def test_only_two_fillable_windows(self):
        lay = make_two_fillable_window_layout()
        slack = lay.slack_stack()
        assert lay.num_layers == 1
        assert int(np.count_nonzero(slack)) == 2

    def test_fillable_positions_respected(self):
        lay = make_two_fillable_window_layout(windows=((1, 2), (3, 4)))
        slack = lay.slack_stack()[0]
        assert slack[1, 2] > 0
        assert slack[3, 4] > 0
        assert slack.sum() == pytest.approx(slack[1, 2] + slack[3, 4])
