"""Tests for layout diffing and dilation (the ECO dirty-window machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import (
    LayoutDiff,
    connected_components,
    diff_layouts,
    dilate_mask,
    edit_layout,
)
from repro.layout.designs import DESIGN_BUILDERS
from repro.layout.layout import MAX_FILL_DENSITY, LayerWindows, Layout


@pytest.fixture(scope="module")
def layout():
    return DESIGN_BUILDERS["A"](rows=10, cols=12, seed=3)


class TestDiffLayouts:
    def test_identical_layouts_empty_diff(self, layout):
        diff = diff_layouts(layout, layout)
        assert diff.is_empty
        assert diff.num_dirty == 0
        assert diff.dirty_fraction == 0.0
        assert diff.changed_layers == ()
        assert diff.bounding_box() is None

    def test_edit_marks_exactly_the_edited_block(self, layout):
        edited = edit_layout(layout, 1, slice(2, 5), slice(3, 7))
        diff = diff_layouts(layout, edited)
        expected = np.zeros(layout.grid.shape, dtype=bool)
        expected[2:5, 3:7] = True
        assert np.array_equal(diff.dirty, expected)
        assert diff.changed_layers == (1,)
        assert diff.num_dirty == 12
        assert diff.bounding_box() == (2, 5, 3, 7)

    def test_slack_only_edit_is_dirty(self, layout):
        edited = edit_layout(layout, 0, slice(0, 1), slice(0, 1),
                             density_delta=0.0, slack_scale=0.25)
        diff = diff_layouts(layout, edited)
        assert diff.num_dirty == 1
        assert diff.dirty[0, 0]

    def test_trench_depth_change_dirties_whole_grid(self, layout):
        layers = [
            LayerWindows(
                name=src.name, density=src.density.copy(),
                slack=src.slack.copy(),
                wire_perimeter=src.wire_perimeter.copy(),
                wire_width=src.wire_width.copy(),
                trench_depth=(src.trench_depth * 1.1 if index == 0
                              else src.trench_depth))
            for index, src in enumerate(layout.layers)
        ]
        edited = Layout(name=layout.name, grid=layout.grid, layers=layers,
                        file_size_mb=layout.file_size_mb,
                        metadata=dict(layout.metadata))
        diff = diff_layouts(layout, edited)
        assert diff.dirty.all()
        assert 0 in diff.changed_layers

    def test_grid_shape_mismatch_raises(self, layout):
        other = DESIGN_BUILDERS["A"](rows=8, cols=12, seed=3)
        with pytest.raises(ValueError, match="window grid"):
            diff_layouts(layout, other)

    def test_layer_count_mismatch_raises(self, layout):
        fewer = Layout(name=layout.name, grid=layout.grid,
                       layers=list(layout.layers[:-1]),
                       file_size_mb=layout.file_size_mb,
                       metadata=dict(layout.metadata))
        with pytest.raises(ValueError, match="layer count"):
            diff_layouts(layout, fewer)


class TestDilateMask:
    def test_radius_zero_is_identity(self):
        mask = np.zeros((5, 7), dtype=bool)
        mask[2, 3] = True
        assert np.array_equal(dilate_mask(mask, 0), mask)

    def test_empty_mask_stays_empty(self):
        mask = np.zeros((4, 4), dtype=bool)
        assert not dilate_mask(mask, 3).any()

    def test_single_seed_grows_a_square(self):
        mask = np.zeros((7, 7), dtype=bool)
        mask[3, 3] = True
        out = dilate_mask(mask, 2)
        expected = np.zeros_like(mask)
        expected[1:6, 1:6] = True
        assert np.array_equal(out, expected)

    def test_clips_at_borders(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        out = dilate_mask(mask, 2)
        expected = np.zeros_like(mask)
        expected[:3, :3] = True
        assert np.array_equal(out, expected)

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError, match=">= 0"):
            dilate_mask(np.zeros((2, 2), dtype=bool), -1)

    def test_non_2d_raises(self):
        with pytest.raises(ValueError, match="2-D"):
            dilate_mask(np.zeros((2, 2, 2), dtype=bool), 1)

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(3, 9), cols=st.integers(3, 9),
        radius=st.integers(0, 4), bits=st.integers(0, 2**16 - 1),
    )
    def test_matches_bruteforce_chebyshev(self, rows, cols, radius, bits):
        rng = np.random.default_rng(bits)
        mask = rng.random((rows, cols)) < 0.2
        out = dilate_mask(mask, radius)
        expected = np.zeros_like(mask)
        for i in range(rows):
            for j in range(cols):
                block = mask[max(0, i - radius):i + radius + 1,
                             max(0, j - radius):j + radius + 1]
                expected[i, j] = bool(block.any())
        assert np.array_equal(out, expected)


class TestConnectedComponents:
    def test_empty_mask(self):
        assert connected_components(np.zeros((5, 5), bool)) == []

    def test_single_blob(self):
        mask = np.zeros((6, 6), bool)
        mask[1:3, 2:5] = True
        comps = connected_components(mask)
        assert len(comps) == 1
        np.testing.assert_array_equal(comps[0], mask)

    def test_diagonal_touch_is_one_component(self):
        mask = np.zeros((4, 4), bool)
        mask[0, 0] = mask[1, 1] = True  # corner-to-corner
        assert len(connected_components(mask)) == 1

    def test_separated_blobs_split(self):
        mask = np.zeros((10, 10), bool)
        mask[0:2, 0:2] = True
        mask[7:9, 7:9] = True
        mask[0, 8] = True
        comps = connected_components(mask)
        assert len(comps) == 3

    def test_components_partition_the_mask(self):
        rng = np.random.default_rng(0)
        mask = rng.random((12, 12)) < 0.3
        comps = connected_components(mask)
        if not mask.any():
            assert comps == []
            return
        union = np.zeros_like(mask)
        for comp in comps:
            assert not (union & comp).any()  # disjoint
            union |= comp
        np.testing.assert_array_equal(union, mask)

    def test_row_major_order(self):
        mask = np.zeros((8, 8), bool)
        mask[5, 1] = True
        mask[0, 6] = True
        comps = connected_components(mask)
        assert comps[0][0, 6] and comps[1][5, 1]

    def test_components_are_chebyshev_separated(self):
        # Dilating any single component by 1 never reaches another: the
        # decomposition matches the receptive-field coupling model.
        rng = np.random.default_rng(1)
        mask = rng.random((15, 15)) < 0.2
        comps = connected_components(mask)
        for i, comp in enumerate(comps):
            grown = dilate_mask(comp, 1)
            for j, other in enumerate(comps):
                if i != j:
                    assert not (grown & other).any()

    def test_non_2d_raises(self):
        with pytest.raises(ValueError, match="2-D"):
            connected_components(np.zeros((2, 2, 2), bool))


class TestEditLayout:
    def test_does_not_mutate_the_original(self, layout):
        before = layout.layers[1].density.copy()
        edit_layout(layout, 1, slice(0, 3), slice(0, 3))
        assert np.array_equal(layout.layers[1].density, before)

    def test_density_clipped_to_max(self, layout):
        edited = edit_layout(layout, 1, slice(0, 2), slice(0, 2),
                             density_delta=5.0)
        assert edited.layers[1].density[:2, :2].max() <= MAX_FILL_DENSITY

    def test_name_suffix_applied(self, layout):
        edited = edit_layout(layout, 0, slice(0, 1), slice(0, 1))
        assert edited.name == layout.name + "-eco"

    def test_bad_layer_raises(self, layout):
        with pytest.raises(ValueError, match="layer"):
            edit_layout(layout, layout.num_layers, slice(0, 1), slice(0, 1))

    def test_roundtrip_diff_is_the_edit(self, layout):
        edited = edit_layout(layout, 0, slice(4, 6), slice(1, 2))
        diff = diff_layouts(layout, edited)
        assert isinstance(diff, LayoutDiff)
        assert diff.bounding_box() == (4, 6, 1, 2)
        assert diff.changed_layers == (0,)
