"""Tests for the four-type slack decomposition (paper Fig. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.layout import (
    LayerWindows,
    Layout,
    WindowGrid,
    allocate_fill_by_priority,
    compute_slack_regions,
    make_design_a,
)


def layered_layout(densities, slack=2000.0, rows=3, cols=3):
    grid = WindowGrid(rows, cols)
    layers = [
        LayerWindows(
            name=f"M{i}",
            density=np.full((rows, cols), rho),
            slack=np.full((rows, cols), slack),
            wire_perimeter=np.full((rows, cols), 100.0),
            wire_width=np.full((rows, cols), 0.2),
        )
        for i, rho in enumerate(densities)
    ]
    return Layout("t", grid, layers)


class TestComputeSlackRegions:
    def test_types_partition_slack(self):
        lay = make_design_a(rows=10, cols=10)
        regs = compute_slack_regions(lay)
        np.testing.assert_allclose(regs.total, lay.slack_stack(), rtol=1e-12)

    def test_all_types_nonnegative(self):
        lay = make_design_a(rows=10, cols=10)
        regs = compute_slack_regions(lay)
        for arr in (regs.type1, regs.type2, regs.type3, regs.type4):
            assert np.all(arr >= 0)

    def test_single_layer_is_all_type1(self):
        lay = layered_layout([0.5])
        regs = compute_slack_regions(lay)
        np.testing.assert_allclose(regs.type1, lay.slack_stack())
        assert np.all(regs.type2 == 0)
        assert np.all(regs.type3 == 0)
        assert np.all(regs.type4 == 0)

    def test_boundary_layers_see_no_outside_wire(self):
        """Bottom layer has no wire below; top layer none above."""
        lay = layered_layout([0.5, 0.5, 0.5])
        regs = compute_slack_regions(lay)
        assert np.all(regs.type3[0] == 0)  # nothing below layer 0
        assert np.all(regs.type4[0] == 0)
        assert np.all(regs.type2[-1] == 0)  # nothing above top layer
        assert np.all(regs.type4[-1] == 0)

    def test_dense_neighbours_shift_slack_to_type4(self):
        sparse = compute_slack_regions(layered_layout([0.1, 0.5, 0.1]))
        dense = compute_slack_regions(layered_layout([0.8, 0.5, 0.8]))
        assert np.all(dense.type4[1] > sparse.type4[1])
        assert np.all(dense.type1[1] < sparse.type1[1])

    def test_non_overlap_slack_bounded(self):
        lay = make_design_a(rows=8, cols=8)
        regs = compute_slack_regions(lay)
        area = lay.grid.window_area
        assert np.all(regs.non_overlap_slack >= 0)
        assert np.all(regs.non_overlap_slack <= area + 1e-9)


class TestAllocateFillByPriority:
    def test_allocation_sums_to_fill(self):
        lay = make_design_a(rows=8, cols=8)
        regs = compute_slack_regions(lay)
        fill = 0.7 * lay.slack_stack()
        parts = allocate_fill_by_priority(fill, regs)
        np.testing.assert_allclose(parts.sum(axis=0), fill, rtol=1e-10)

    def test_priority_order(self):
        """Type 2 is used only once type 1 is exhausted, etc."""
        lay = make_design_a(rows=8, cols=8)
        regs = compute_slack_regions(lay)
        fill = 0.9 * lay.slack_stack()
        parts = allocate_fill_by_priority(fill, regs)
        caps = regs.stacked()
        for t in range(1, 4):
            used_later = parts[t] > 1e-9
            earlier_full = np.abs(parts[t - 1] - caps[t - 1]) < 1e-6
            assert np.all(earlier_full[used_later])

    def test_capacity_respected(self):
        lay = make_design_a(rows=8, cols=8)
        regs = compute_slack_regions(lay)
        parts = allocate_fill_by_priority(lay.slack_stack(), regs)
        caps = regs.stacked()
        assert np.all(parts <= caps + 1e-9)

    def test_over_capacity_rejected(self):
        lay = make_design_a(rows=4, cols=4)
        regs = compute_slack_regions(lay)
        with pytest.raises(ValueError):
            allocate_fill_by_priority(lay.slack_stack() * 2.0, regs)

    @given(
        frac=hnp.arrays(np.float64, (2, 4, 4), elements=st.floats(0, 1)),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_partition(self, frac):
        lay = layered_layout([0.3, 0.6], rows=4, cols=4)
        regs = compute_slack_regions(lay)
        fill = frac * regs.total
        parts = allocate_fill_by_priority(fill, regs)
        np.testing.assert_allclose(parts.sum(axis=0), fill, atol=1e-9)
        assert np.all(parts >= 0)
