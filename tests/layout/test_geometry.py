"""Unit and property tests for rectangle geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.layout.geometry import Rect, union_area


def test_rect_basic_properties():
    r = Rect(0, 0, 4, 3)
    assert r.width == 4
    assert r.height == 3
    assert r.area == 12
    assert r.perimeter == 14


def test_degenerate_rect_rejected():
    with pytest.raises(ValueError):
        Rect(2, 0, 1, 1)
    with pytest.raises(ValueError):
        Rect(0, 5, 1, 1)


def test_zero_area_rect_allowed():
    r = Rect(1, 1, 1, 4)
    assert r.area == 0
    assert r.width == 0


def test_intersects_and_intersection():
    a = Rect(0, 0, 2, 2)
    b = Rect(1, 1, 3, 3)
    assert a.intersects(b)
    inter = a.intersection(b)
    assert inter == Rect(1, 1, 2, 2)


def test_touching_rects_do_not_intersect():
    a = Rect(0, 0, 1, 1)
    b = Rect(1, 0, 2, 1)
    assert not a.intersects(b)
    assert a.intersection(b) is None


def test_translated():
    assert Rect(0, 0, 1, 1).translated(2, 3) == Rect(2, 3, 3, 4)


def test_contains_point_half_open():
    r = Rect(0, 0, 1, 1)
    assert r.contains_point(0, 0)
    assert not r.contains_point(1, 1)


def test_union_area_disjoint_and_overlapping():
    assert union_area([]) == 0.0
    assert union_area([Rect(0, 0, 1, 1), Rect(2, 0, 3, 1)]) == pytest.approx(2.0)
    assert union_area([Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)]) == pytest.approx(7.0)


def test_union_area_nested():
    outer = Rect(0, 0, 10, 10)
    inner = Rect(2, 2, 4, 4)
    assert union_area([outer, inner]) == pytest.approx(100.0)


rect_strategy = st.builds(
    lambda x, y, w, h: Rect(x, y, x + w, y + h),
    st.floats(-50, 50), st.floats(-50, 50),
    st.floats(0.1, 20), st.floats(0.1, 20),
)


@given(st.lists(rect_strategy, min_size=1, max_size=8))
def test_union_area_bounds(rects):
    """Union area is between the max single area and the sum of areas."""
    u = union_area(rects)
    assert u <= sum(r.area for r in rects) + 1e-6
    assert u >= max(r.area for r in rects) - 1e-6


@given(rect_strategy, rect_strategy)
def test_intersection_symmetric_and_contained(a, b):
    assert a.intersects(b) == b.intersects(a)
    inter = a.intersection(b)
    if inter is not None:
        assert inter.area <= min(a.area, b.area) + 1e-9
        assert union_area([a, b]) == pytest.approx(a.area + b.area - inter.area, rel=1e-6, abs=1e-6)
