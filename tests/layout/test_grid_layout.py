"""Tests for the window grid and the layout data model."""

import numpy as np
import pytest

from repro.layout import LayerWindows, Layout, WindowGrid, apply_fill, dummy_count


def make_layer(rows=4, cols=5, density=0.4, slack=2000.0, name="M1"):
    shape = (rows, cols)
    return LayerWindows(
        name=name,
        density=np.full(shape, density),
        slack=np.full(shape, slack),
        wire_perimeter=np.full(shape, 1000.0),
        wire_width=np.full(shape, 0.2),
        trench_depth=3000.0,
    )


def make_layout(rows=4, cols=5, layers=2):
    grid = WindowGrid(rows, cols)
    return Layout("t", grid, [make_layer(rows, cols, name=f"M{i}") for i in range(layers)])


class TestWindowGrid:
    def test_shape_and_area(self):
        g = WindowGrid(3, 7, window_um=100.0)
        assert g.shape == (3, 7)
        assert g.num_windows == 21
        assert g.window_area == 10000.0
        assert g.chip_width_um == 700.0
        assert g.chip_height_um == 300.0

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            WindowGrid(0, 5)
        with pytest.raises(ValueError):
            WindowGrid(5, 5, window_um=-1)

    def test_window_of(self):
        g = WindowGrid(4, 4)
        assert g.window_of(0.0, 0.0) == (0, 0)
        assert g.window_of(150.0, 250.0) == (2, 1)
        with pytest.raises(ValueError):
            g.window_of(401.0 * 100, 0.0)


class TestLayout:
    def test_stacks_shapes(self):
        lay = make_layout(layers=3)
        assert lay.shape == (3, 4, 5)
        assert lay.density_stack().shape == (3, 4, 5)
        assert lay.slack_stack().shape == (3, 4, 5)
        assert lay.trench_depths().shape == (3,)

    def test_layer_shape_mismatch_rejected(self):
        grid = WindowGrid(4, 5)
        with pytest.raises(ValueError):
            Layout("bad", grid, [make_layer(3, 5)])

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            Layout("bad", WindowGrid(2, 2), [])

    def test_density_bounds_enforced(self):
        with pytest.raises(ValueError):
            make_layer(density=1.5)
        with pytest.raises(ValueError):
            make_layer(slack=-1.0)

    def test_validate_fill(self):
        lay = make_layout()
        ok = np.full(lay.shape, 1000.0)
        lay.validate_fill(ok)
        with pytest.raises(ValueError):
            lay.validate_fill(np.full(lay.shape, 3000.0))
        with pytest.raises(ValueError):
            lay.validate_fill(-ok)
        with pytest.raises(ValueError):
            lay.validate_fill(ok[:1])


class TestApplyFill:
    def test_no_fill_returns_original_features(self):
        lay = make_layout()
        f = apply_fill(lay)
        np.testing.assert_allclose(f.density, lay.density_stack())
        np.testing.assert_allclose(f.perimeter, lay.perimeter_stack())
        np.testing.assert_allclose(f.wire_width, lay.width_stack())
        assert f.trench_depth.shape == lay.shape

    def test_density_increases_by_fill_fraction(self):
        lay = make_layout()
        fill = np.full(lay.shape, 1000.0)
        f = apply_fill(lay, fill)
        np.testing.assert_allclose(
            f.density, lay.density_stack() + 1000.0 / lay.grid.window_area
        )

    def test_perimeter_increases_with_dummies(self):
        lay = make_layout()
        fill = np.full(lay.shape, 400.0)
        f = apply_fill(lay, fill, dummy_side=2.0)
        n = dummy_count(fill, 2.0)
        np.testing.assert_allclose(f.perimeter, lay.perimeter_stack() + 8.0 * n)

    def test_width_moves_toward_dummy_side(self):
        lay = make_layout()
        fill = lay.slack_stack()  # fill everything
        f = apply_fill(lay, fill, dummy_side=2.0)
        assert np.all(f.wire_width > lay.width_stack())
        assert np.all(f.wire_width < 2.0)

    def test_zero_density_empty_window_keeps_width(self):
        layer = make_layer(density=0.0)
        lay = Layout("t", WindowGrid(4, 5), [layer])
        f = apply_fill(lay, np.zeros(lay.shape))
        np.testing.assert_allclose(f.wire_width[0], layer.wire_width)

    def test_overfull_fill_rejected(self):
        lay = make_layout()
        with pytest.raises(ValueError):
            apply_fill(lay, np.full(lay.shape, 1e9))
