"""Drift monitor unit tests: sampling, residuals, windowed hysteresis.

All fast: the "simulator" and "network" are tiny fakes, so these cover
the control logic (deterministic sampling, bounded backlog, trip-once
hysteresis) without ever touching the real CMP physics.
"""

import threading
import time

import numpy as np
import pytest

from repro.layout.designs import DESIGN_BUILDERS
from repro.lifecycle import (
    DriftWindow,
    OffenderSample,
    ResidualRecord,
    ShadowExecutor,
    residual_stats,
)


class FakeSimResult:
    def __init__(self, height):
        self.height = height


class FakeSimulator:
    """Returns a constant height map; records every call."""

    def __init__(self, height):
        self.height = np.asarray(height, dtype=float)
        self.calls = []

    def simulate_layout(self, layout, fill=None):
        self.calls.append((layout, fill))
        return FakeSimResult(self.height)


class FakeNetwork:
    def __init__(self, height):
        self.height = np.asarray(height, dtype=float)

    def predict_heights(self, fill):
        return self.height


class CountingStats:
    def __init__(self):
        self.counters = {}
        self.gauges = {}

    def incr(self, name, value=1):
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name, value):
        self.gauges[name] = value


@pytest.fixture(scope="module")
def layout():
    return DESIGN_BUILDERS["A"](rows=6, cols=6, seed=1)


def record(model="m", rmse=0.0, generation=1, sample=None, job_id="j"):
    return ResidualRecord(job_id=job_id, model=model, generation=generation,
                          rmse=rmse, max_abs=rmse, sample=sample)


class TestResidualStats:
    def test_zero_for_identical(self):
        heights = np.arange(12.0).reshape(3, 4)
        assert residual_stats(heights, heights) == (0.0, 0.0)

    def test_known_values(self):
        a = np.zeros((2, 2))
        b = np.array([[3.0, 0.0], [0.0, 4.0]])
        rmse, max_abs = residual_stats(a, b)
        assert rmse == pytest.approx(np.sqrt(25.0 / 4.0))
        assert max_abs == 4.0


class TestWireRoundTrip:
    def test_offender_sample(self, layout):
        from repro.layout.io import layout_to_dict
        sample = OffenderSample(
            job_id="j1", model="m", generation=3,
            layout=layout_to_dict(layout),
            fill=np.ones((2, 6, 6)), sim_heights=np.zeros((6, 6)),
            rmse=12.5)
        back = OffenderSample.from_wire(sample.to_wire())
        assert back.job_id == "j1" and back.generation == 3
        assert np.array_equal(back.fill, sample.fill)
        bound = back.bind_layout()
        assert bound.grid.rows == 6 and bound.grid.cols == 6

    def test_residual_record_without_sample(self):
        rec = record(rmse=7.0)
        wire = rec.to_wire()
        assert "sample" not in wire
        back = ResidualRecord.from_wire(wire)
        assert back.rmse == 7.0 and back.sample is None


class TestShadowExecutor:
    def _drain(self, shadow, sink, expect, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(sink) >= expect and shadow.pending() == 0:
                return
            time.sleep(0.01)
        raise AssertionError(f"only {len(sink)}/{expect} records arrived")

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ShadowExecutor(FakeSimulator(np.zeros((2, 2))), 0.0, 1.0,
                           lambda r: None)
        with pytest.raises(ValueError):
            ShadowExecutor(FakeSimulator(np.zeros((2, 2))), 1.5, 1.0,
                           lambda r: None)
        with pytest.raises(ValueError):
            ShadowExecutor(FakeSimulator(np.zeros((2, 2))), 0.5, 0.0,
                           lambda r: None)

    def test_deterministic_sampling_half_rate(self, layout):
        sink = []
        heights = np.zeros((6, 6))
        shadow = ShadowExecutor(FakeSimulator(heights), 0.5, 10.0,
                                sink.append)
        try:
            sampled = sum(
                shadow.submit(job_id=f"j{i}", model="m", generation=1,
                              layout=layout, fill=np.zeros((2, 6, 6)),
                              network=FakeNetwork(heights))
                for i in range(10))
            assert sampled == 5  # floor-counter sampling, no RNG
            self._drain(shadow, sink, 5)
        finally:
            shadow.close()

    def test_full_rate_emits_residual_and_offender(self, layout):
        sink = []
        sim = FakeSimulator(np.zeros((6, 6)))
        shadow = ShadowExecutor(sim, 1.0, drift_bound=5.0, sink=sink.append)
        try:
            shadow.submit(job_id="ok", model="m", generation=2,
                          layout=layout, fill=np.zeros((2, 6, 6)),
                          network=FakeNetwork(np.full((6, 6), 1.0)))
            shadow.submit(job_id="bad", model="m", generation=2,
                          layout=layout, fill=np.ones((2, 6, 6)),
                          network=FakeNetwork(np.full((6, 6), 100.0)))
            self._drain(shadow, sink, 2)
        finally:
            shadow.close()
        by_id = {r.job_id: r for r in sink}
        assert by_id["ok"].rmse == pytest.approx(1.0)
        assert by_id["ok"].sample is None  # inside the bound
        offender = by_id["bad"]
        assert offender.rmse == pytest.approx(100.0)
        assert offender.sample is not None
        assert offender.sample.generation == 2
        assert np.array_equal(offender.sample.fill, np.ones((2, 6, 6)))
        assert np.array_equal(offender.sample.sim_heights, np.zeros((6, 6)))

    def test_backlog_drops_instead_of_blocking(self, layout):
        release = threading.Event()

        class SlowSimulator(FakeSimulator):
            def simulate_layout(self, layout, fill=None):
                release.wait(10.0)
                return super().simulate_layout(layout, fill)

        stats = CountingStats()
        shadow = ShadowExecutor(SlowSimulator(np.zeros((6, 6))), 1.0, 5.0,
                                lambda r: None, stats=stats, max_queue=2)
        try:
            results = [
                shadow.submit(job_id=f"j{i}", model="m", generation=1,
                              layout=layout, fill=np.zeros((2, 6, 6)),
                              network=FakeNetwork(np.zeros((6, 6))))
                for i in range(6)
            ]
            # First fills the worker + queue; later submits are dropped.
            assert not all(results)
            assert stats.counters.get("lifecycle.shadow_dropped", 0) >= 1
        finally:
            release.set()
            shadow.close()

    def test_simulator_error_is_counted_not_fatal(self, layout):
        class BrokenSimulator:
            def simulate_layout(self, layout, fill=None):
                raise RuntimeError("boom")

        stats = CountingStats()
        sink = []
        shadow = ShadowExecutor(BrokenSimulator(), 1.0, 5.0, sink.append,
                                stats=stats)
        try:
            shadow.submit(job_id="j", model="m", generation=1, layout=layout,
                          fill=np.zeros((2, 6, 6)),
                          network=FakeNetwork(np.zeros((6, 6))))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline \
                    and not stats.counters.get("lifecycle.shadow_errors"):
                time.sleep(0.01)
        finally:
            shadow.close()
        assert stats.counters.get("lifecycle.shadow_errors") == 1
        assert sink == []

    def test_closed_executor_refuses(self, layout):
        shadow = ShadowExecutor(FakeSimulator(np.zeros((6, 6))), 1.0, 5.0,
                                lambda r: None)
        shadow.close()
        assert shadow.submit(job_id="j", model="m", generation=1,
                             layout=layout, fill=np.zeros((2, 6, 6)),
                             network=FakeNetwork(np.zeros((6, 6)))) is False


class TestDriftWindow:
    def test_trips_after_trip_count_exceedances(self):
        trips = []
        window = DriftWindow(bound=10.0, window=4, trip_count=2,
                             on_trip=lambda m, offs: trips.append((m, offs)))
        assert window.observe(record(rmse=50.0)) is False
        assert window.observe(record(rmse=1.0)) is False
        assert window.observe(record(rmse=60.0)) is True
        assert trips and trips[0][0] == "m"

    def test_single_outlier_never_trips(self):
        window = DriftWindow(bound=10.0, window=8, trip_count=3)
        assert window.observe(record(rmse=1e6)) is False
        for _ in range(20):
            assert window.observe(record(rmse=0.1)) is False
        assert window.status()["m"]["trips"] == 0

    def test_hysteresis_no_retrain_storm(self):
        trips = []
        window = DriftWindow(bound=10.0, window=4, trip_count=2,
                             on_trip=lambda m, offs: trips.append(m))
        for _ in range(10):
            window.observe(record(rmse=99.0))
        assert trips == ["m"]  # tripped exactly once while disarmed
        status = window.status()["m"]
        assert status["armed"] is False
        assert status["exceeded_total"] == 10

    def test_note_swap_clears_and_rearms(self):
        trips = []
        window = DriftWindow(bound=10.0, window=4, trip_count=2,
                             on_trip=lambda m, offs: trips.append(m))
        for _ in range(3):
            window.observe(record(rmse=99.0))
        window.note_swap("m")
        status = window.status()["m"]
        assert status["armed"] is True and status["window"] == 0
        # Old exceedances must not count toward a post-swap trip.
        assert window.observe(record(rmse=99.0, generation=2)) is False
        assert window.observe(record(rmse=99.0, generation=2)) is True
        assert trips == ["m", "m"]

    def test_offenders_capped_and_passed_to_trip(self, layout):
        from repro.layout.io import layout_to_dict
        seen = []
        window = DriftWindow(bound=10.0, window=8, trip_count=8,
                             on_trip=lambda m, offs: seen.extend(offs),
                             max_offenders=3)
        for i in range(8):
            sample = OffenderSample(
                job_id=f"j{i}", model="m", generation=1,
                layout=layout_to_dict(layout), fill=np.zeros((2, 6, 6)),
                sim_heights=np.zeros((6, 6)), rmse=99.0)
            window.observe(record(rmse=99.0, sample=sample, job_id=f"j{i}"))
        assert [s.job_id for s in seen] == ["j5", "j6", "j7"]
        assert [s.job_id for s in window.offenders("m")] \
            == ["j5", "j6", "j7"]

    def test_models_tracked_independently(self):
        window = DriftWindow(bound=10.0, window=4, trip_count=2)
        window.observe(record(model="a", rmse=99.0))
        window.observe(record(model="b", rmse=0.1))
        status = window.status()
        assert status["a"]["window_exceeded"] == 1
        assert status["b"]["window_exceeded"] == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DriftWindow(bound=0.0)
        with pytest.raises(ValueError):
            DriftWindow(bound=1.0, window=0)
        with pytest.raises(ValueError):
            DriftWindow(bound=1.0, window=4, trip_count=5)
