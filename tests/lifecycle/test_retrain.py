"""Retrain orchestrator tests: state machine, retries, determinism.

The state-machine tests stub out the expensive train/validate stages;
the determinism test at the bottom runs the real (tiny) pipeline twice
and asserts byte-identical checkpoint directories for a fixed seed.
"""

import threading

import numpy as np
import pytest

from repro.cmp import CmpSimulator
from repro.layout.designs import DESIGN_BUILDERS
from repro.layout.io import layout_to_dict
from repro.lifecycle import (
    OffenderSample,
    RetrainConfig,
    RetrainOrchestrator,
    split_offenders,
)
from repro.lifecycle.retrain import _ValidationFailed


@pytest.fixture(scope="module")
def layout():
    return DESIGN_BUILDERS["A"](rows=8, cols=8, seed=2)


def offender(layout, job_id="j1", rmse=100.0):
    return OffenderSample(
        job_id=job_id, model="m", generation=1,
        layout=layout_to_dict(layout),
        fill=np.zeros((layout.num_layers, layout.grid.rows,
                       layout.grid.cols)),
        sim_heights=np.zeros((layout.grid.rows, layout.grid.cols)),
        rmse=rmse)


class TestSplitOffenders:
    def test_even_odd_split(self, layout):
        offs = [offender(layout, job_id=f"j{i}") for i in range(5)]
        train, holdout = split_offenders(offs)
        assert [o.job_id for o in train] == ["j0", "j2", "j4"]
        assert [o.job_id for o in holdout] == ["j1", "j3"]

    def test_single_offender_serves_both_roles(self, layout):
        offs = [offender(layout)]
        train, holdout = split_offenders(offs)
        assert train == offs and holdout == offs


class StubbedOrchestrator(RetrainOrchestrator):
    """Replaces the train/validate stages with scripted outcomes."""

    def __init__(self, tmp_path, outcomes, **kwargs):
        kwargs.setdefault("config", RetrainConfig(max_retries=2,
                                                  backoff_s=0.01))
        super().__init__(tmp_path, **kwargs)
        self.outcomes = list(outcomes)
        self.calls = 0

    def _retrain_once(self, model, parent, new_generation, arch, offenders,
                      augment_layouts):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return self.checkpoint_root / f"gen-{new_generation:03d}"

    def _validate(self, directory, offenders):
        return {"holdout": 1, "candidate_rmse": 1.0,
                "incumbent_rmse": 100.0, "bound": 50.0}


class TestOrchestratorStateMachine:
    def test_success_promotes_and_resets(self, tmp_path, layout):
        promoted = []
        orch = StubbedOrchestrator(
            tmp_path, ["ok"],
            on_success=lambda *args: promoted.append(args))
        assert orch.request("m", 1, {}, [offender(layout)]) is True
        assert orch.wait(30.0)
        assert orch.status()["state"] == "idle"
        assert orch.status()["successes"] == 1
        assert orch.status()["last_generation"] == 2
        (model, directory, generation, verdict) = promoted[0]
        assert model == "m" and generation == 2
        assert verdict["candidate_rmse"] == 1.0

    def test_transient_errors_retried_then_succeed(self, tmp_path, layout):
        orch = StubbedOrchestrator(
            tmp_path, [RuntimeError("flaky"), RuntimeError("flaky"), "ok"])
        assert orch.request("m", 1, {}, [offender(layout)])
        assert orch.wait(30.0)
        assert orch.calls == 3
        assert orch.status()["state"] == "idle"

    def test_transient_errors_exhaust_to_terminal(self, tmp_path, layout):
        orch = StubbedOrchestrator(
            tmp_path, [RuntimeError("down")] * 3)
        assert orch.request("m", 1, {}, [offender(layout)])
        assert orch.wait(30.0)
        status = orch.status()
        assert status["state"] == "retrain_failed"
        assert "down" in status["last_error"]
        # Terminal state suppresses new requests until reset().
        assert orch.request("m", 1, {}, [offender(layout)]) is False
        orch.reset()
        orch.outcomes = ["ok"]
        assert orch.request("m", 1, {}, [offender(layout)]) is True
        assert orch.wait(30.0)
        assert orch.status()["state"] == "idle"

    def test_validation_failure_is_immediately_terminal(self, tmp_path,
                                                        layout):
        class FailingValidation(StubbedOrchestrator):
            def _validate(self, directory, offenders):
                raise _ValidationFailed({"holdout": 1,
                                         "candidate_rmse": 99.0,
                                         "incumbent_rmse": 1.0,
                                         "bound": 50.0})

        orch = FailingValidation(tmp_path, ["ok", "ok", "ok"])
        assert orch.request("m", 1, {}, [offender(layout)])
        assert orch.wait(30.0)
        assert orch.calls == 1  # deterministic failure: no retries
        status = orch.status()
        assert status["state"] == "retrain_failed"
        assert status["last_validation"]["candidate_rmse"] == 99.0

    def test_concurrent_request_suppressed(self, tmp_path, layout):
        gate = threading.Event()

        class Blocking(StubbedOrchestrator):
            def _retrain_once(self, *args):
                gate.wait(10.0)
                return super()._retrain_once(*args)

        orch = Blocking(tmp_path, ["ok"])
        assert orch.request("m", 1, {}, [offender(layout)]) is True
        assert orch.request("m", 1, {}, [offender(layout)]) is False
        gate.set()
        assert orch.wait(30.0)

    def test_empty_offenders_refused(self, tmp_path):
        orch = StubbedOrchestrator(tmp_path, [])
        assert orch.request("m", 1, {}, []) is False

    def test_swap_callback_failure_is_terminal(self, tmp_path, layout):
        def refuse(*args):
            raise ValueError("generation must increase")

        orch = StubbedOrchestrator(tmp_path, ["ok"], on_success=refuse)
        assert orch.request("m", 1, {}, [offender(layout)])
        assert orch.wait(30.0)
        status = orch.status()
        assert status["state"] == "retrain_failed"
        assert "swap failed" in status["last_error"]


class TestDeterministicRetrain:
    def test_byte_identical_checkpoints_for_fixed_seed(self, tmp_path,
                                                       layout):
        """Same offenders + same seed => byte-identical gen directory."""
        config = RetrainConfig(samples=3, epochs=2, seed=7, batch_size=2,
                               tile_rows=8, tile_cols=8, n_workers=2)
        simulator = CmpSimulator()
        offenders = [offender(layout)]
        directories = []
        for run in ("a", "b"):
            orch = RetrainOrchestrator(tmp_path / run, config,
                                       simulator=simulator)
            directories.append(orch._retrain_once(
                "m", 1, 2, {"base_channels": 4, "depth": 1},
                offenders, []))
        for name in ("unet.npz", "surrogate.json"):
            first = (directories[0] / name).read_bytes()
            second = (directories[1] / name).read_bytes()
            assert first == second, f"{name} differs between retrains"

    def test_validation_passes_against_weak_incumbent(self, tmp_path,
                                                      layout):
        """A real tiny retrain beats an incumbent with huge residuals."""
        config = RetrainConfig(samples=3, epochs=2, seed=7, batch_size=2,
                               tile_rows=8, tile_cols=8, n_workers=2,
                               validation_bound=25.0)
        simulator = CmpSimulator()
        sim_heights = simulator.simulate_layout(layout).height
        bad = offender(layout, rmse=1e9)
        bad.fill = np.zeros_like(bad.fill)
        bad.sim_heights = np.asarray(sim_heights, dtype=float)
        orch = RetrainOrchestrator(tmp_path, config, simulator=simulator)
        directory = orch._retrain_once(
            "m", 1, 2, {"base_channels": 4, "depth": 1}, [bad], [])
        verdict = orch._validate(directory, [bad])
        assert verdict["candidate_rmse"] < verdict["incumbent_rmse"]
