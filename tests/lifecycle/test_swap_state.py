"""LifecycleManager + persisted swap-state tests (no serve layer).

The manager is exercised with injected fakes for everything the serve
layer normally provides (``apply_swap``, ``model_info``,
``journal_reader``), which is exactly the decoupling the module
promises: lifecycle never imports serve.
"""

import json

import pytest

from repro.lifecycle import (
    LifecycleManager,
    ResidualRecord,
    STATE_FILENAME,
    read_state,
    write_state,
)
from repro.serve import ServeConfig


def lifecycle_config(**overrides):
    defaults = dict(shadow_sample_rate=0.0, drift_bound=10.0,
                    drift_window=4, drift_trip_count=2, auto_retrain=False)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def residual(model="m", rmse=0.0, generation=1, job_id="j"):
    return ResidualRecord(job_id=job_id, model=model, generation=generation,
                          rmse=rmse, max_abs=rmse)


class TestStateFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / STATE_FILENAME
        write_state(path, {"models": {"m": {"generation": 3}}})
        assert read_state(path) == {"models": {"m": {"generation": 3}}}

    def test_missing_and_corrupt_read_as_none(self, tmp_path):
        assert read_state(tmp_path / "absent.json") is None
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        assert read_state(corrupt) is None
        not_dict = tmp_path / "list.json"
        not_dict.write_text("[1, 2]")
        assert read_state(not_dict) is None

    def test_write_replaces_atomically(self, tmp_path):
        path = tmp_path / STATE_FILENAME
        write_state(path, {"generation": 1})
        write_state(path, {"generation": 2})
        assert read_state(path) == {"generation": 2}
        assert [p.name for p in tmp_path.iterdir()] == [STATE_FILENAME]


class TestGenerationBookkeeping:
    def test_defaults_to_generation_one(self):
        manager = LifecycleManager(lifecycle_config())
        assert manager.generation_of("never-seen") == 1

    def test_note_swap_persists_and_restores(self, tmp_path):
        ckpt = tmp_path / "gen-002"
        ckpt.mkdir()
        (ckpt / "surrogate.json").write_text("{}")
        state_path = tmp_path / STATE_FILENAME
        manager = LifecycleManager(lifecycle_config(),
                                   state_path=state_path)
        manager.set_generation("m", 1, str(tmp_path / "boot"))
        manager.note_swap("m", str(ckpt), 2)
        assert manager.generation_of("m") == 2

        fresh = LifecycleManager(lifecycle_config(), state_path=state_path)
        restored = fresh.restore()
        assert restored == {"m": (str(ckpt), 2)}
        assert fresh.generation_of("m") == 2

    def test_restore_skips_vanished_checkpoints(self, tmp_path):
        state_path = tmp_path / STATE_FILENAME
        write_state(state_path, {"models": {
            "gone": {"directory": str(tmp_path / "deleted"),
                     "generation": 5}}})
        manager = LifecycleManager(lifecycle_config(),
                                   state_path=state_path)
        assert manager.restore() == {}

    def test_status_reports_swap_counts(self, tmp_path):
        ckpt = tmp_path / "gen-002"
        ckpt.mkdir()
        (ckpt / "surrogate.json").write_text("{}")
        manager = LifecycleManager(lifecycle_config())
        manager.note_swap("m", str(ckpt), 2)
        status = manager.status()
        assert status["generations"]["m"]["swaps"] == 1
        assert status["generations"]["m"]["generation"] == 2
        assert status["auto_retrain"] is False


class TestResidualIntake:
    def test_observe_wire_rejects_garbage(self):
        class Stats:
            def __init__(self):
                self.counters = {}

            def incr(self, name, value=1):
                self.counters[name] = self.counters.get(name, 0) + value

            def set_gauge(self, name, value):
                pass

        stats = Stats()
        manager = LifecycleManager(lifecycle_config(), stats=stats)
        manager.observe_wire({"kind": "residual"})  # missing fields
        assert stats.counters["lifecycle.bad_residual_frames"] == 1

    def test_observe_wire_feeds_drift_window(self):
        manager = LifecycleManager(lifecycle_config())
        wire = residual(rmse=99.0).to_wire()
        manager.observe_wire(dict(wire, kind="residual"))
        assert manager.window.status()["m"]["window_exceeded"] == 1

    def test_residual_forward_failure_counted_not_fatal(self):
        class Stats:
            def __init__(self):
                self.counters = {}

            def incr(self, name, value=1):
                self.counters[name] = self.counters.get(name, 0) + value

            def set_gauge(self, name, value):
                pass

        stats = Stats()

        def broken_forward(wire):
            raise BrokenPipeError("shard pipe gone")

        manager = LifecycleManager(lifecycle_config(), stats=stats,
                                   residual_forward=broken_forward)
        manager.observe(residual(rmse=1.0))
        assert stats.counters["lifecycle.forward_errors"] == 1
        assert manager.window.status()["m"]["observed"] == 1


class TestTripPlumbing:
    def test_trip_gathers_arch_and_journal_layouts(self, tmp_path):
        requests = {}

        class StubOrchestrator:
            def __init__(self):
                self.requests = []

            def request(self, model, generation, arch, offenders,
                        augment_layouts=None):
                self.requests.append(
                    (model, generation, arch, offenders, augment_layouts))
                return True

        layout_dict = {"name": "inline", "windows": []}

        manager = LifecycleManager(
            lifecycle_config(),
            model_info=lambda name: {"arch": {"base_channels": 4,
                                              "depth": 1}},
            journal_reader=lambda ids: {
                i: {"params": {"layout": layout_dict}} for i in ids})
        manager.orchestrator = StubOrchestrator()
        manager.set_generation("m", 3)

        from repro.lifecycle import OffenderSample
        import numpy as np
        sample = OffenderSample(job_id="j9", model="m", generation=3,
                                layout=layout_dict,
                                fill=np.zeros((1, 2, 2)),
                                sim_heights=np.zeros((2, 2)), rmse=99.0)
        manager._on_trip("m", [sample])
        (model, generation, arch, offenders, augment) = \
            manager.orchestrator.requests[0]
        assert model == "m" and generation == 3
        assert arch == {"base_channels": 4, "depth": 1}
        assert offenders == [sample]
        assert augment == [layout_dict]

    def test_trip_without_orchestrator_is_noop(self):
        manager = LifecycleManager(lifecycle_config())
        manager._on_trip("m", [])  # must not raise

    def test_retrain_success_applies_swap_then_records(self, tmp_path):
        applied = []
        manager = LifecycleManager(
            lifecycle_config(),
            apply_swap=lambda m, d, g: applied.append((m, d, g)))
        manager.set_generation("m", 1)
        ckpt = tmp_path / "gen-002"
        ckpt.mkdir()
        (ckpt / "surrogate.json").write_text("{}")
        manager._on_retrain_success("m", str(ckpt), 2, {"holdout": 1})
        assert applied == [("m", str(ckpt), 2)]
        assert manager.generation_of("m") == 2


class TestConstructionGuards:
    def test_shadow_needs_simulator(self):
        with pytest.raises(ValueError):
            LifecycleManager(lifecycle_config(shadow_sample_rate=1.0),
                             simulator=None, local_shadow=True)

    def test_auto_retrain_needs_checkpoint_root(self):
        with pytest.raises(ValueError):
            LifecycleManager(lifecycle_config(auto_retrain=True),
                             checkpoint_root=None)

    def test_serve_config_validates_lifecycle_knobs(self):
        with pytest.raises(ValueError):
            ServeConfig(shadow_sample_rate=1.5)
        with pytest.raises(ValueError):
            ServeConfig(drift_bound=0.0)
        with pytest.raises(ValueError):
            ServeConfig(drift_window=0)
        with pytest.raises(ValueError):
            ServeConfig(drift_window=4, drift_trip_count=5)
        with pytest.raises(ValueError):
            ServeConfig(retrain_samples=1)
