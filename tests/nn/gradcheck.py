"""Finite-difference gradient checking helper for autodiff tests."""

import numpy as np

from repro.nn import Tensor


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = grad.ravel()
    xf = x.ravel()
    for k in range(x.size):
        orig = xf[k]
        xf[k] = orig + eps
        hi = fn(x)
        xf[k] = orig - eps
        lo = fn(x)
        xf[k] = orig
        flat[k] = (hi - lo) / (2 * eps)
    return grad


def check_grad(build, x: np.ndarray, eps: float = 1e-6,
               rtol: float = 1e-4, atol: float = 1e-6) -> None:
    """Assert autodiff gradient of ``build(Tensor) -> Tensor`` matches FD.

    ``build`` maps a leaf tensor to a (not necessarily scalar) output; the
    scalar objective is ``sum(output)``.
    """
    x = np.asarray(x, dtype=np.float64)

    def scalar(arr):
        t = Tensor(arr)
        return float(build(t).sum().data)

    expected = numeric_grad(scalar, x.copy(), eps=eps)
    leaf = Tensor(x, requires_grad=True)
    out = build(leaf).sum()
    out.backward()
    np.testing.assert_allclose(leaf.grad, expected, rtol=rtol, atol=atol)
