"""Captured-graph replay: bitwise parity, arena reuse, graph teardown.

Every parity assertion here is *bitwise* (``np.array_equal``, not
``allclose``): the capture executor's contract is that replaying a traced
plan on new inputs produces exactly the arrays a fresh eager execution
would — same ufuncs, same operands, same accumulation order.
"""

import gc
import weakref

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.capture import CaptureMiss, CapturedGraph
from repro.nn.conv import (
    avg_pool2d,
    conv2d,
    conv_transpose2d,
    max_pool2d,
    upsample2x,
)
from repro.nn.tensor import Tensor


def eager_reference(build, values, seed=None):
    """Fresh eager forward+backward; returns (root value, x grad)."""
    tensors = {
        name: Tensor(v, requires_grad=(name == "x"))
        for name, v in values.items()
    }
    out = build(tensors)["root"]
    out.backward(seed)
    return out.data.copy(), tensors["x"].grad.copy()


def assert_replay_matches_eager(build, trace_values, replay_values,
                                seed=None):
    plan = CapturedGraph.trace(build, trace_values, grad_inputs=("x",),
                               seed=seed)
    # The trace IS the first eager call.
    value0, grad0 = eager_reference(build, trace_values, seed)
    assert np.array_equal(plan.outputs["root"].data, value0)
    assert np.array_equal(plan.grad("x"), grad0)

    plan.replay(replay_values, seed=seed)
    value1, grad1 = eager_reference(build, replay_values, seed)
    assert np.array_equal(plan.outputs["root"].data, value1)
    assert np.array_equal(plan.grad("x"), grad1)
    return plan


def rng_arrays(*shapes, seed=0, lo=0.1, hi=2.0):
    rng = np.random.default_rng(seed)
    return [rng.uniform(lo, hi, size=s) for s in shapes]


class TestOpParity:
    """One composite graph per op family, replayed on fresh values."""

    @pytest.mark.parametrize("name,fn", [
        ("add", lambda t: (t["x"] + t["y"]).sum()),
        ("radd_scalar", lambda t: (3.0 + t["x"]).sum()),
        ("neg_sub", lambda t: (t["x"] - t["y"]).sum()),
        ("mul", lambda t: (t["x"] * t["y"]).sum()),
        ("div", lambda t: (t["x"] / t["y"]).sum()),
        ("pow_square", lambda t: (t["x"] ** 2.0).sum()),
        ("pow_sqrt", lambda t: (t["x"] ** 0.5).sum()),
        ("pow_recip", lambda t: (t["x"] ** -1.0).sum()),
        ("pow_general", lambda t: (t["x"] ** 1.7).sum()),
        ("abs", lambda t: (t["x"] - 1.0).abs().sum()),
        ("exp", lambda t: t["x"].exp().sum()),
        ("log", lambda t: t["x"].log().sum()),
        ("mean_var", lambda t: t["x"].var(axis=(0, 1)).sum()),
        ("reshape", lambda t: (t["x"].reshape(6, 4) ** 2.0).sum()),
        ("transpose",
         lambda t: (t["x"].transpose(1, 0, 2) * t["x"].transpose(1, 0, 2)).sum()),
        ("getitem", lambda t: (t["x"][1:, :, ::2] ** 2.0).sum()),
        ("relu", lambda t: F.relu(t["x"] - 1.0).sum()),
        ("leaky_relu", lambda t: F.leaky_relu(t["x"] - 1.0, 0.1).sum()),
        ("sigmoid", lambda t: F.sigmoid(t["x"] - 1.0).sum()),
        ("tanh", lambda t: F.tanh(t["x"]).sum()),
        ("softplus", lambda t: F.softplus(t["x"] - 1.0).sum()),
        ("maximum", lambda t: F.maximum(t["x"] - 1.0, 0.0).sum()),
        ("minimum", lambda t: F.minimum(t["x"], t["y"]).sum()),
        ("clip", lambda t: F.clip(t["x"], 0.5, 1.5).sum()),
        ("concat",
         lambda t: F.concat([t["x"], t["x"] * 2.0], axis=1).sum()),
        ("pad2d", lambda t: (F.pad2d(t["x"], (1, 2, 0, 1)) ** 2.0).sum()),
    ])
    def test_elementwise_families(self, name, fn):
        def build(tensors):
            return {"root": fn(tensors)}

        x0, y0 = rng_arrays((2, 3, 4), (2, 3, 4), seed=1)
        x1, y1 = rng_arrays((2, 3, 4), (2, 3, 4), seed=2)
        assert_replay_matches_eager(
            build, {"x": x0, "y": y0}, {"x": x1, "y": y1})

    def test_matmul(self):
        def build(tensors):
            return {"root": (tensors["x"] @ tensors["y"]).sum()}

        x0, y0 = rng_arrays((3, 4), (4, 5), seed=3)
        x1, y1 = rng_arrays((3, 4), (4, 5), seed=4)
        assert_replay_matches_eager(
            build, {"x": x0, "y": y0}, {"x": x1, "y": y1})

    @pytest.mark.parametrize("name,fn", [
        ("conv", lambda t, w, b: conv2d(t["x"], w, b, padding=1).sum()),
        ("conv_stride",
         lambda t, w, b: conv2d(t["x"], w, None, stride=2, padding=1).sum()),
        ("convT", lambda t, w2, b: conv_transpose2d(
            t["x"], w2, b, stride=2).sum()),
        ("maxpool", lambda t, w, b: max_pool2d(t["x"], 2).sum()),
        ("avgpool", lambda t, w, b: avg_pool2d(t["x"], 2).sum()),
        ("upsample", lambda t, w, b: (upsample2x(t["x"]) ** 2.0).sum()),
    ])
    def test_conv_families(self, name, fn):
        rng = np.random.default_rng(11)
        if name == "convT":
            w = Tensor(rng.standard_normal((3, 2, 2, 2)), requires_grad=True)
        else:
            w = Tensor(rng.standard_normal((2, 3, 3, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(2), requires_grad=True)

        def build(tensors):
            return {"root": fn(tensors, w, b)}

        (x0,) = rng_arrays((2, 3, 8, 8), seed=5, lo=-1.0, hi=1.0)
        (x1,) = rng_arrays((2, 3, 8, 8), seed=6, lo=-1.0, hi=1.0)
        assert_replay_matches_eager(build, {"x": x0}, {"x": x1})

    def test_nondefault_seed(self):
        def build(tensors):
            return {"root": (tensors["x"] ** 2.0).sum(axis=1)}

        (x0,) = rng_arrays((3, 4), seed=7)
        (x1,) = rng_arrays((3, 4), seed=8)
        seed = np.array([1.0, -2.0, 0.5])
        assert_replay_matches_eager(build, {"x": x0}, {"x": x1}, seed=seed)


class TestArena:
    def _plan(self):
        def build(tensors):
            hidden = F.relu(tensors["x"] * 2.0 - 1.0)
            return {"root": (hidden ** 2.0).sum(), "hidden": hidden}

        (x0,) = rng_arrays((4, 5), seed=9)
        return build, CapturedGraph.trace(
            build, {"x": x0}, grad_inputs=("x",))

    def test_replay_reuses_buffers(self):
        build, plan = self._plan()
        # First replay switches the input gradient onto the arena buffer
        # (the trace-time gradient was handed to the trace caller).
        (x1,) = rng_arrays((4, 5), seed=10)
        plan.replay({"x": x1})
        data_ids = {name: id(t.data) for name, t in plan.outputs.items()}
        grad_id = id(plan.inputs["x"].grad)
        (x2,) = rng_arrays((4, 5), seed=11)
        plan.replay({"x": x2})
        for name, t in plan.outputs.items():
            assert id(t.data) == data_ids[name], name
        assert id(plan.inputs["x"].grad) == grad_id

    def test_results_are_copies(self):
        build, plan = self._plan()
        (x1,) = rng_arrays((4, 5), seed=12)
        plan.replay({"x": x1})
        out = plan.output("hidden")
        grad = plan.grad("x")
        assert out is not plan.outputs["hidden"].data
        assert grad is not plan.inputs["x"].grad
        out[...] = -1.0
        grad[...] = -1.0
        assert not np.array_equal(plan.outputs["hidden"].data, out)

    def test_arena_bytes_positive_and_stable(self):
        _, plan = self._plan()
        assert plan.arena_bytes > 0
        before = plan.arena_bytes
        (x1,) = rng_arrays((4, 5), seed=13)
        plan.replay({"x": x1})
        assert plan.arena_bytes == before

    def test_want_grad_false_skips_backward(self):
        build, plan = self._plan()
        (x1,) = rng_arrays((4, 5), seed=14)
        plan.replay({"x": x1}, want_grad=False)
        assert plan.grad("x") is None
        value, _ = eager_reference(build, {"x": x1})
        assert np.array_equal(plan.outputs["root"].data, value)

    def test_param_grads_skipped_on_replay(self):
        rng = np.random.default_rng(15)
        w = Tensor(rng.standard_normal((4, 5)), requires_grad=True)

        def build(tensors):
            return {"root": ((tensors["x"] * w) ** 2.0).sum()}

        (x0,) = rng_arrays((4, 5), seed=16)
        plan = CapturedGraph.trace(build, {"x": x0}, grad_inputs=("x",))
        (x1,) = rng_arrays((4, 5), seed=17)
        plan.replay({"x": x1})
        # Parameter gradient work is skipped; requires_grad is restored.
        assert w.grad is None
        assert w.requires_grad
        # The input gradient is still bitwise exact.
        _, grad1 = eager_reference(build, {"x": x1})
        assert np.array_equal(plan.grad("x"), grad1)

    def test_live_param_updates_flow_into_replays(self):
        rng = np.random.default_rng(18)
        w = Tensor(rng.standard_normal((3, 3)), requires_grad=True)

        def build(tensors):
            return {"root": (tensors["x"] * w).sum()}

        (x0,) = rng_arrays((3, 3), seed=19)
        plan = CapturedGraph.trace(build, {"x": x0}, grad_inputs=("x",))
        w.data[...] *= 0.5  # in-place optimizer-style update
        plan.replay({"x": x0})
        value, grad = eager_reference(build, {"x": x0})
        assert np.array_equal(plan.outputs["root"].data, value)
        assert np.array_equal(plan.grad("x"), grad)


class TestCaptureMiss:
    def _plan(self):
        def build(tensors):
            return {"root": (tensors["x"] ** 2.0).sum()}

        (x0,) = rng_arrays((3, 4), seed=20)
        return CapturedGraph.trace(build, {"x": x0}, grad_inputs=("x",))

    def test_shape_mismatch(self):
        plan = self._plan()
        with pytest.raises(CaptureMiss, match="shape"):
            plan.replay({"x": np.zeros((4, 4))})

    def test_missing_input(self):
        plan = self._plan()
        with pytest.raises(CaptureMiss, match="missing"):
            plan.replay({"y": np.zeros((3, 4))})

    def test_seed_shape_mismatch(self):
        def build(tensors):
            return {"root": (tensors["x"] ** 2.0).sum(axis=1)}

        (x0,) = rng_arrays((3, 4), seed=21)
        plan = CapturedGraph.trace(build, {"x": x0}, grad_inputs=("x",))
        with pytest.raises(CaptureMiss, match="seed"):
            plan.replay({"x": x0}, seed=np.ones(4))


class TestGraphTeardown:
    """backward() drops the graph so results no longer pin intermediates."""

    def test_backward_clears_history(self):
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        out = (x * 2.0 + 1.0).sum()
        out.backward()
        assert out._parents == ()
        assert out._backward is None

    def test_retain_graph_keeps_history(self):
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        out = (x * 2.0).sum()
        out.backward(retain_graph=True)
        assert out._parents != ()
        assert out._backward is not None
        # A second sweep over the retained graph still works (gradients
        # accumulate, as in eager autograd generally).
        out.backward(retain_graph=True)
        assert x.grad is not None and x.grad.shape == (3, 3)

    def test_result_does_not_pin_intermediates(self):
        x = Tensor(np.ones((64, 64)), requires_grad=True)
        hidden = F.relu(x * 3.0 - 1.0)
        out = (hidden ** 2.0).sum()
        ref = weakref.ref(hidden)
        out.backward()
        del hidden
        gc.collect()
        # Without teardown, `out._parents` would keep `hidden` alive for
        # as long as the caller holds the scalar result.
        assert ref() is None
        assert out.item() is not None  # result itself still usable

    def test_intermediates_pinned_without_backward_teardown(self):
        # Control: retain_graph=True preserves the old pinning behaviour,
        # proving the teardown (not scoping luck) is what frees the graph.
        x = Tensor(np.ones((8, 8)), requires_grad=True)
        hidden = F.relu(x * 3.0)
        out = (hidden ** 2.0).sum()
        ref = weakref.ref(hidden)
        out.backward(retain_graph=True)
        del hidden
        gc.collect()
        assert ref() is not None
