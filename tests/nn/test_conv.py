"""Tests for convolution, pooling and upsampling (values and gradients)."""

import numpy as np
import pytest

from repro.nn import Tensor, avg_pool2d, conv2d, conv_transpose2d, max_pool2d, upsample2x

from .gradcheck import check_grad


def brute_conv2d(x, w, b=None, stride=1, padding=0):
    """Reference implementation with explicit loops."""
    B, C, H, W = x.shape
    O, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    Ho = (H + 2 * padding - kh) // stride + 1
    Wo = (W + 2 * padding - kw) // stride + 1
    out = np.zeros((B, O, Ho, Wo))
    for bb in range(B):
        for o in range(O):
            for i in range(Ho):
                for j in range(Wo):
                    patch = xp[bb, :, i * stride : i * stride + kh,
                               j * stride : j * stride + kw]
                    out[bb, o, i, j] = (patch * w[o]).sum()
            if b is not None:
                out[bb, o] += b[o]
    return out


class TestConv2dForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_brute_force(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        np.testing.assert_allclose(out.data, brute_conv2d(x, w, b, stride, padding),
                                   rtol=1e-10, atol=1e-10)

    def test_identity_kernel(self):
        x = np.random.default_rng(1).normal(size=(1, 1, 4, 4))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = conv2d(Tensor(x), Tensor(w), padding=1)
        np.testing.assert_allclose(out.data, x, atol=1e-12)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            conv2d(Tensor(np.ones((1, 2, 4, 4))), Tensor(np.ones((1, 3, 3, 3))))

    def test_kernel_too_large_rejected(self):
        with pytest.raises(ValueError):
            conv2d(Tensor(np.ones((1, 1, 2, 2))), Tensor(np.ones((1, 1, 5, 5))))

    def test_non_4d_rejected(self):
        with pytest.raises(ValueError):
            conv2d(Tensor(np.ones((2, 4, 4))), Tensor(np.ones((1, 1, 3, 3))))


class TestConv2dGrad:
    def test_grad_x(self):
        rng = np.random.default_rng(2)
        w = Tensor(rng.normal(size=(2, 3, 3, 3)))
        check_grad(lambda t: conv2d(t, w, padding=1),
                   rng.normal(size=(1, 3, 5, 5)), rtol=1e-3, atol=1e-5)

    def test_grad_x_strided(self):
        rng = np.random.default_rng(3)
        w = Tensor(rng.normal(size=(2, 1, 3, 3)))
        check_grad(lambda t: conv2d(t, w, stride=2, padding=1),
                   rng.normal(size=(1, 1, 6, 6)), rtol=1e-3, atol=1e-5)

    def test_grad_w(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.normal(size=(2, 2, 5, 5)))
        check_grad(lambda t: conv2d(x, t, padding=1),
                   rng.normal(size=(3, 2, 3, 3)), rtol=1e-3, atol=1e-5)

    def test_grad_bias(self):
        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(size=(2, 2, 4, 4)))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)))
        check_grad(lambda t: conv2d(x, w, t, padding=1), rng.normal(size=3))


class TestConvTranspose2d:
    def test_upsamples_shape(self):
        x = Tensor(np.ones((1, 3, 5, 6)))
        w = Tensor(np.ones((3, 2, 2, 2)))
        out = conv_transpose2d(x, w, stride=2)
        assert out.shape == (1, 2, 10, 12)

    def test_is_adjoint_of_conv(self):
        """<conv(x), y> == <x, conv_T(y)> for matching weights."""
        rng = np.random.default_rng(6)
        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 2, 2, 2))  # (O, C, kh, kw) for conv
        y = rng.normal(size=(1, 3, 3, 3))
        fwd = conv2d(Tensor(x), Tensor(w), stride=2).data
        # conv_transpose weight layout is (C_in=O, C_out=C, kh, kw).
        adj = conv_transpose2d(Tensor(y), Tensor(w), stride=2).data
        assert float((fwd * y).sum()) == pytest.approx(float((x * adj).sum()), rel=1e-10)

    def test_grad_x_and_w(self):
        rng = np.random.default_rng(7)
        w = Tensor(rng.normal(size=(2, 3, 2, 2)))
        check_grad(lambda t: conv_transpose2d(t, w, stride=2),
                   rng.normal(size=(1, 2, 3, 3)), rtol=1e-3, atol=1e-5)
        x = Tensor(rng.normal(size=(1, 2, 3, 3)))
        check_grad(lambda t: conv_transpose2d(x, t, stride=2),
                   rng.normal(size=(2, 3, 2, 2)), rtol=1e-3, atol=1e-5)

    def test_grad_bias(self):
        rng = np.random.default_rng(8)
        x = Tensor(rng.normal(size=(1, 2, 3, 3)))
        w = Tensor(rng.normal(size=(2, 3, 2, 2)))
        check_grad(lambda t: conv_transpose2d(x, w, t, stride=2), rng.normal(size=3))

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            conv_transpose2d(Tensor(np.ones((1, 2, 3, 3))),
                             Tensor(np.ones((3, 2, 2, 2))))


class TestMaxPool:
    def test_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_grad_routes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_gradcheck_random(self):
        rng = np.random.default_rng(9)
        # Distinct values avoid argmax ties that break FD comparison.
        x = rng.permutation(np.arange(64.0)).reshape(1, 1, 8, 8) * 0.1
        check_grad(lambda t: max_pool2d(t, 2), x)


class TestUpsampleAvgPool:
    def test_upsample_forward(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2)
        out = upsample2x(Tensor(x))
        np.testing.assert_allclose(
            out.data[0, 0],
            [[1, 1, 2, 2], [1, 1, 2, 2], [3, 3, 4, 4], [3, 3, 4, 4]],
        )

    def test_upsample_grad_sums(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        upsample2x(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 2, 2), 4.0))

    def test_upsample_gradcheck(self):
        check_grad(upsample2x, np.random.default_rng(10).normal(size=(1, 2, 3, 3)))

    def test_avg_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_grad(self):
        check_grad(lambda t: avg_pool2d(t, 2),
                   np.random.default_rng(11).normal(size=(1, 1, 4, 4)))

    def test_avg_pool_indivisible_rejected(self):
        with pytest.raises(ValueError):
            avg_pool2d(Tensor(np.ones((1, 1, 5, 4))), 2)
