"""Backend parity suite for the shape-aware conv dispatch layer.

Every backend (im2col / fft / matmul) must produce the same forward
values AND the same input/weight/bias adjoints, across strides 1-2,
paddings 0-2, odd shapes and 1x1/2x2/3x3 kernels.  The im2col path is
the reference (it is the seed implementation, already validated against
brute-force loops in test_conv.py).
"""

import json

import numpy as np
import pytest

from repro.config import CONV_BACKEND_ENV, CONV_PLAN_CACHE_ENV, conv_backend_override
from repro.nn import Tensor, conv2d, conv_transpose2d
from repro.nn import dispatch


@pytest.fixture(autouse=True)
def _isolated_dispatch(monkeypatch):
    """Each test starts with cold caches and no persistence."""
    monkeypatch.setenv(CONV_PLAN_CACHE_ENV, "off")
    monkeypatch.delenv(CONV_BACKEND_ENV, raising=False)
    dispatch.clear_caches()
    yield
    dispatch.clear_caches()


def _conv_case(backend, monkeypatch, *, shape, wshape, stride, padding):
    monkeypatch.setenv(CONV_BACKEND_ENV, backend)
    rng = np.random.default_rng(7)
    x = Tensor(rng.normal(size=shape), requires_grad=True)
    w = Tensor(rng.normal(size=wshape), requires_grad=True)
    b = Tensor(rng.normal(size=wshape[0]), requires_grad=True)
    out = conv2d(x, w, b, stride=stride, padding=padding)
    out.backward(rng.normal(size=out.shape))
    return out.data, x.grad, w.grad, b.grad


class TestConv2dBackendParity:
    @pytest.mark.parametrize("backend", ["fft", "matmul"])
    @pytest.mark.parametrize("stride", [1, 2])
    @pytest.mark.parametrize("padding", [0, 1, 2])
    @pytest.mark.parametrize("shape,wshape", [
        ((2, 3, 6, 7), (4, 3, 3, 3)),    # odd spatial, 3x3
        ((1, 2, 9, 5), (3, 2, 2, 2)),    # even kernel, odd map
        ((2, 4, 8, 8), (5, 4, 1, 1)),    # pointwise
        ((1, 1, 11, 13), (1, 1, 5, 3)),  # asymmetric kernel
    ])
    def test_forward_and_adjoints_match_im2col(self, backend, stride, padding,
                                               shape, wshape, monkeypatch):
        ref = _conv_case("im2col", monkeypatch,
                         shape=shape, wshape=wshape, stride=stride,
                         padding=padding)
        got = _conv_case(backend, monkeypatch,
                         shape=shape, wshape=wshape, stride=stride,
                         padding=padding)
        for r, g, name in zip(ref, got, ("out", "dx", "dw", "db")):
            np.testing.assert_allclose(g, r, rtol=1e-9, atol=1e-9,
                                       err_msg=f"{backend}/{name}")


def _convt_case(backend, monkeypatch, *, shape, wshape, stride):
    monkeypatch.setenv(CONV_BACKEND_ENV, backend)
    rng = np.random.default_rng(3)
    x = Tensor(rng.normal(size=shape), requires_grad=True)
    w = Tensor(rng.normal(size=wshape), requires_grad=True)
    b = Tensor(rng.normal(size=wshape[1]), requires_grad=True)
    out = conv_transpose2d(x, w, b, stride=stride)
    out.backward(rng.normal(size=out.shape))
    return out.data, x.grad, w.grad, b.grad


class TestConvTranspose2dBackendParity:
    @pytest.mark.parametrize("backend", ["fft", "matmul"])
    @pytest.mark.parametrize("stride", [1, 2])
    @pytest.mark.parametrize("shape,wshape", [
        ((2, 3, 5, 6), (3, 4, 2, 2)),
        ((1, 2, 7, 4), (2, 3, 3, 3)),
    ])
    def test_forward_and_adjoints_match_im2col(self, backend, stride, shape,
                                               wshape, monkeypatch):
        ref = _convt_case("im2col", monkeypatch,
                          shape=shape, wshape=wshape, stride=stride)
        got = _convt_case(backend, monkeypatch,
                          shape=shape, wshape=wshape, stride=stride)
        for r, g, name in zip(ref, got, ("out", "dx", "dw", "db")):
            np.testing.assert_allclose(g, r, rtol=1e-9, atol=1e-9,
                                       err_msg=f"{backend}/{name}")


class TestFloat32Parity:
    @pytest.mark.parametrize("backend", ["fft", "matmul"])
    def test_forward_close_in_float32(self, backend, monkeypatch):
        from repro.nn import compute_dtype
        rng = np.random.default_rng(11)
        x = rng.normal(size=(1, 2, 8, 8)).astype(np.float32)
        w = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
        with compute_dtype("float32"):
            monkeypatch.setenv(CONV_BACKEND_ENV, "im2col")
            ref = conv2d(Tensor(x), Tensor(w), padding=1)
            monkeypatch.setenv(CONV_BACKEND_ENV, backend)
            got = conv2d(Tensor(x), Tensor(w), padding=1)
        assert ref.dtype == np.float32 and got.dtype == np.float32
        np.testing.assert_allclose(got.data, ref.data, rtol=1e-4, atol=1e-4)


class TestPlanCache:
    def test_heuristic_below_threshold(self):
        rng = np.random.default_rng(0)
        dispatch.corr2d(rng.normal(size=(1, 2, 8, 8)),
                        rng.normal(size=(3, 2, 3, 3)))
        dispatch.corr2d(rng.normal(size=(1, 2, 8, 8)),
                        rng.normal(size=(3, 2, 1, 1)))
        dispatch.corr2d(rng.normal(size=(1, 2, 8, 8)),
                        rng.normal(size=(3, 2, 5, 5)))
        dispatch.corr2d_weight_grad(rng.normal(size=(1, 3, 6, 6)),
                                    rng.normal(size=(1, 2, 8, 8)), 3, 3)
        plans = dispatch.plan_table()
        by_key = {(key.split("|")[0], key.split("|")[1].split("k")[1][:3]): plan
                  for key, plan in plans.items()}
        # Small forward kernels ride the shifted-GEMM path; big kernels
        # and the fused weight-grad contraction stay on im2col.
        assert by_key[("corr", "3x3")]["backend"] == "matmul"
        assert by_key[("corr", "1x1")]["backend"] == "matmul"
        assert by_key[("corr", "5x5")]["backend"] == "im2col"
        assert by_key[("wgrad", "3x3")]["backend"] == "im2col"
        assert all(p["source"] == "heuristic" for p in plans.values())

    def test_calibration_above_threshold_records_timings(self):
        rng = np.random.default_rng(0)
        side = int(np.sqrt(dispatch.CALIBRATE_MIN_CELLS))
        xp = rng.normal(size=(1, 1, side, side))
        w = rng.normal(size=(1, 1, 3, 3))
        out = dispatch.corr2d(xp, w)
        (plan,) = dispatch.plan_table().values()
        assert plan["source"] == "calibrated"
        assert plan["backend"] in dispatch.BACKENDS
        assert set(plan["timings_ms"]) == set(dispatch.BACKENDS)
        assert plan["max_abs_dev"] < 1e-6
        # Replays dispatch to the recorded winner and stay bit-identical
        # run to run within a session.
        np.testing.assert_array_equal(out, dispatch.corr2d(xp, w))

    def test_override_env_beats_plan(self, monkeypatch):
        rng = np.random.default_rng(0)
        xp = rng.normal(size=(1, 1, 16, 16))
        w = rng.normal(size=(1, 1, 3, 3))
        dispatch.corr2d(xp, w)
        monkeypatch.setenv(CONV_BACKEND_ENV, "fft")
        dispatch.clear_caches()
        out = dispatch.corr2d(xp, w)
        assert dispatch.plan_table() == {}  # forced: no plan recorded
        ref = dispatch._corr_fft(xp, w, 1)
        np.testing.assert_array_equal(out, ref)

    def test_forced_backend_falls_back_when_ineligible(self, monkeypatch):
        # FFT cannot do stride 2; the dispatcher silently uses im2col.
        monkeypatch.setenv(CONV_BACKEND_ENV, "fft")
        rng = np.random.default_rng(0)
        xp = rng.normal(size=(1, 1, 8, 8))
        w = rng.normal(size=(1, 1, 3, 3))
        out = dispatch.corr2d(xp, w, stride=2)
        np.testing.assert_array_equal(out, dispatch._corr_im2col(xp, w, 2))

    def test_invalid_override_rejected(self, monkeypatch):
        monkeypatch.setenv(CONV_BACKEND_ENV, "winograd")
        with pytest.raises(ValueError):
            conv_backend_override()

    def test_plan_persistence_roundtrip(self, monkeypatch, tmp_path):
        plan_file = tmp_path / "plans.json"
        monkeypatch.setenv(CONV_PLAN_CACHE_ENV, str(plan_file))
        dispatch.clear_caches()
        rng = np.random.default_rng(0)
        side = int(np.sqrt(dispatch.CALIBRATE_MIN_CELLS))
        xp = rng.normal(size=(1, 1, side, side))
        w = rng.normal(size=(1, 1, 3, 3))
        dispatch.corr2d(xp, w)
        assert plan_file.exists()
        saved = json.loads(plan_file.read_text())
        assert saved["numpy"] == np.__version__
        (key,) = saved["plans"].keys()

        # A cold process (cleared caches) reuses the persisted plan
        # without re-calibrating.
        dispatch.clear_caches()
        dispatch.corr2d(xp, w)
        assert dispatch.plan_table()[key]["source"] == "persisted"

    def test_stale_numpy_version_invalidates(self, monkeypatch, tmp_path):
        plan_file = tmp_path / "plans.json"
        plan_file.write_text(json.dumps({
            "version": 1, "numpy": "0.0.0",
            "plans": {"corr|b1c1h8w8o1k3x3s1|float64": {"backend": "fft"}},
        }))
        monkeypatch.setenv(CONV_PLAN_CACHE_ENV, str(plan_file))
        dispatch.clear_caches()
        rng = np.random.default_rng(0)
        dispatch.corr2d(rng.normal(size=(1, 1, 8, 8)),
                        rng.normal(size=(1, 1, 3, 3)))
        assert all(p["source"] == "heuristic"
                   for p in dispatch.plan_table().values())


class TestKernelFftCache:
    def test_repeated_fft_calls_reuse_kernel_transform(self, monkeypatch):
        monkeypatch.setenv(CONV_BACKEND_ENV, "fft")
        rng = np.random.default_rng(0)
        xp = rng.normal(size=(1, 2, 12, 12))
        w = rng.normal(size=(3, 2, 3, 3))
        first = dispatch.corr2d(xp, w)
        assert len(dispatch._kernel_ffts) == 1
        second = dispatch.corr2d(xp, w)
        assert len(dispatch._kernel_ffts) == 1
        np.testing.assert_array_equal(first, second)

    def test_cache_is_content_keyed(self, monkeypatch):
        # In-place mutation of a kernel must not serve a stale transform.
        monkeypatch.setenv(CONV_BACKEND_ENV, "fft")
        rng = np.random.default_rng(0)
        xp = rng.normal(size=(1, 1, 10, 10))
        w = rng.normal(size=(1, 1, 3, 3))
        before = dispatch.corr2d(xp, w)
        w[0, 0, 0, 0] += 1.0
        after = dispatch.corr2d(xp, w)
        assert not np.allclose(before, after)
        np.testing.assert_allclose(after, dispatch._corr_im2col(xp, w, 1),
                                   rtol=1e-9, atol=1e-9)
