"""Tests for functional activations and tensor surgery ops."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from .gradcheck import check_grad


class TestActivations:
    def test_relu_forward(self):
        np.testing.assert_allclose(
            F.relu(Tensor([-1.0, 0.0, 2.0])).data, [0, 0, 2]
        )

    def test_relu_grad(self):
        check_grad(F.relu, np.array([-1.0, 0.5, 2.0]))

    def test_leaky_relu(self):
        out = F.leaky_relu(Tensor([-2.0, 2.0]), 0.1)
        np.testing.assert_allclose(out.data, [-0.2, 2.0])
        check_grad(lambda t: F.leaky_relu(t, 0.1), np.array([-1.0, 0.5]))

    def test_sigmoid_forward_range(self):
        out = F.sigmoid(Tensor([-100.0, 0.0, 100.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-10)

    def test_sigmoid_grad(self):
        check_grad(F.sigmoid, np.array([-2.0, 0.0, 1.5]))

    def test_sigmoid_extreme_inputs_finite(self):
        t = Tensor([1e6, -1e6], requires_grad=True)
        out = F.sigmoid(t)
        out.sum().backward()
        assert np.all(np.isfinite(out.data))
        assert np.all(np.isfinite(t.grad))

    def test_tanh_grad(self):
        check_grad(F.tanh, np.array([-1.0, 0.3, 2.0]))

    def test_softplus_matches_reference(self):
        x = np.array([-5.0, 0.0, 5.0])
        np.testing.assert_allclose(
            F.softplus(Tensor(x)).data, np.log1p(np.exp(x)), rtol=1e-10
        )

    def test_softplus_grad(self):
        check_grad(F.softplus, np.array([-2.0, 0.1, 3.0]))

    def test_softplus_large_input_linear(self):
        out = F.softplus(Tensor([100.0]))
        assert out.data[0] == pytest.approx(100.0)


class TestMinMaxClip:
    def test_maximum_forward(self):
        np.testing.assert_allclose(
            F.maximum(Tensor([1.0, 5.0]), 3.0).data, [3, 5]
        )

    def test_maximum_grad_both_sides(self):
        check_grad(lambda t: F.maximum(t, 1.0), np.array([0.0, 2.0]))
        a = np.array([0.0, 2.0])
        other = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        out = F.maximum(Tensor(a), other).sum()
        out.backward()
        np.testing.assert_allclose(other.grad, [1.0, 0.0])

    def test_minimum(self):
        np.testing.assert_allclose(
            F.minimum(Tensor([1.0, 5.0]), 3.0).data, [1, 3]
        )
        check_grad(lambda t: F.minimum(t, 1.0), np.array([0.0, 2.0]))

    def test_clip_forward_and_grad(self):
        out = F.clip(Tensor([-2.0, 0.5, 9.0]), 0.0, 1.0)
        np.testing.assert_allclose(out.data, [0, 0.5, 1])
        t = Tensor([-2.0, 0.5, 9.0], requires_grad=True)
        F.clip(t, 0.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0, 1, 0])


class TestConcatPad:
    def test_concat_forward(self):
        a = Tensor(np.ones((1, 2, 3)))
        b = Tensor(np.zeros((1, 1, 3)))
        out = F.concat([a, b], axis=1)
        assert out.shape == (1, 3, 3)

    def test_concat_grad_splits(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = F.concat([a, b], axis=1)
        out.backward(np.arange(10.0).reshape(2, 5))
        np.testing.assert_allclose(a.grad, [[0, 1], [5, 6]])
        np.testing.assert_allclose(b.grad, [[2, 3, 4], [7, 8, 9]])

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            F.concat([], axis=0)

    def test_pad2d_forward(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        out = F.pad2d(x, (1, 0, 0, 2))
        assert out.shape == (1, 1, 3, 4)
        assert out.data[0, 0, 0].sum() == 0  # padded top row
        assert out.data[0, 0, 1, :2].sum() == 2

    def test_pad2d_grad(self):
        check_grad(lambda t: F.pad2d(t, (1, 2, 3, 0)) * 2.0,
                   np.random.default_rng(0).normal(size=(1, 1, 3, 3)))

    def test_pad2d_negative_rejected(self):
        with pytest.raises(ValueError):
            F.pad2d(Tensor(np.ones((1, 1, 2, 2))), (-1, 0, 0, 0))

    def test_ones_and_mean_over(self):
        assert F.ones((2, 3)).shape == (2, 3)
        x = Tensor(np.arange(6.0).reshape(2, 3))
        np.testing.assert_allclose(F.mean_over(x, axis=1).data, [1.0, 4.0])
