"""Tests for GroupNorm, LR schedulers and gradient clipping."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    CosineLR,
    GroupNorm,
    StepLR,
    Tensor,
    clip_grad_norm,
)

from .gradcheck import check_grad


class TestGroupNorm:
    def test_normalises_per_group(self):
        gn = GroupNorm(2, 4)
        x = Tensor(np.random.default_rng(0).normal(3.0, 5.0, size=(2, 4, 6, 6)))
        out = gn(x).data
        # Each (sample, group) block is zero-mean unit-var.
        grouped = out.reshape(2, 2, 2, 6, 6)
        np.testing.assert_allclose(grouped.mean(axis=(2, 3, 4)), 0.0, atol=1e-10)
        np.testing.assert_allclose(grouped.var(axis=(2, 3, 4)), 1.0, rtol=1e-3)

    def test_batch_independent(self):
        """The property BatchNorm lacks: per-sample results never depend
        on what else is in the batch."""
        gn = GroupNorm(2, 4)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 4, 5, 5))
        alone = gn(Tensor(x)).data
        batched = gn(Tensor(np.concatenate([x, rng.normal(size=(3, 4, 5, 5))]))).data
        np.testing.assert_allclose(batched[:1], alone, rtol=1e-12)

    def test_gradients_flow(self):
        gn = GroupNorm(1, 2)
        check_grad(lambda t: gn(t),
                   np.random.default_rng(2).normal(size=(1, 2, 3, 3)),
                   rtol=1e-3, atol=1e-6)
        assert gn.gamma.requires_grad and gn.beta.requires_grad

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupNorm(3, 4)  # not divisible
        gn = GroupNorm(2, 4)
        with pytest.raises(ValueError):
            gn(Tensor(np.ones((2, 4, 4))))  # not 4-D
        with pytest.raises(ValueError):
            gn(Tensor(np.ones((1, 6, 4, 4))))  # wrong channels


class TestClipGradNorm:
    def test_clips_when_over(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_no_clip_when_under(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, 0.1)

    def test_none_grads_skipped(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestSchedulers:
    def _opt(self, lr=0.1):
        return SGD([Tensor(np.zeros(1), requires_grad=True)], lr=lr)

    def test_step_lr_halves(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(6)]
        np.testing.assert_allclose(lrs, [0.1, 0.05, 0.05, 0.025, 0.025, 0.0125])

    def test_cosine_lr_endpoints(self):
        opt = self._opt()
        sched = CosineLR(opt, t_max=10, min_lr=0.01)
        lrs = [sched.step() for _ in range(12)]
        assert lrs[0] < 0.1  # decays immediately
        assert lrs[9] == pytest.approx(0.01, abs=1e-9)
        assert lrs[11] == pytest.approx(0.01, abs=1e-9)  # clamped past t_max
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_scheduler_affects_updates(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([x], lr=0.1)
        sched = StepLR(opt, step_size=1, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=1, gamma=1.5)
        with pytest.raises(ValueError):
            CosineLR(self._opt(), t_max=0)
