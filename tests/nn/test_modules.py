"""Tests for the Module system, layers and checkpointing."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tensor,
    load_module,
    save_module,
)


def tiny_net(rng=0):
    return Sequential(
        Conv2d(1, 2, 3, padding=1, rng=rng),
        BatchNorm2d(2),
        ReLU(),
        Conv2d(2, 1, 1, rng=rng),
    )


class TestModuleTraversal:
    def test_named_parameters(self):
        net = tiny_net()
        names = [n for n, _ in net.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.0.bias" in names
        assert "layers.1.gamma" in names
        assert "layers.3.weight" in names

    def test_parameters_count(self):
        conv = Conv2d(3, 4, 3)
        assert conv.num_parameters() == 4 * 3 * 3 * 3 + 4

    def test_no_bias(self):
        conv = Conv2d(1, 1, 3, bias=False)
        assert len(conv.parameters()) == 1

    def test_zero_grad(self):
        net = tiny_net()
        x = Tensor(np.ones((1, 1, 4, 4)))
        net(x).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_train_eval_recursive(self):
        net = tiny_net()
        net.eval()
        assert not net.layers[1].training
        net.train()
        assert net.layers[1].training

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module().forward()


class TestStateDict:
    def test_roundtrip(self):
        a = tiny_net(rng=1)
        b = tiny_net(rng=2)
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(1, 1, 4, 4)))
        a.eval(), b.eval()
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_buffers_included(self):
        net = tiny_net()
        state = net.state_dict()
        assert "buffer:layers.1.running_mean" in state

    def test_mismatch_rejected(self):
        net = tiny_net()
        state = net.state_dict()
        state.pop("layers.0.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        net = tiny_net()
        state = net.state_dict()
        state["layers.0.weight"] = np.zeros((1, 1, 1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_save_load_file(self, tmp_path):
        a = tiny_net(rng=3)
        path = tmp_path / "net.npz"
        save_module(a, path)
        b = tiny_net(rng=4)
        load_module(b, path)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 1, 4, 4)))
        a.eval(), b.eval()
        np.testing.assert_allclose(a(x).data, b(x).data)


class TestLinear:
    def test_forward_shape(self):
        lin = Linear(3, 5, rng=0)
        out = lin(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 5)

    def test_trains_on_regression(self):
        from repro.nn import Adam, mse_loss
        rng = np.random.default_rng(0)
        X = rng.normal(size=(64, 2))
        true_w = np.array([[1.5], [-2.0]])
        y = X @ true_w + 0.3
        lin = Linear(2, 1, rng=0)
        opt = Adam(lin.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = mse_loss(lin(Tensor(X)), Tensor(y))
            loss.backward()
            opt.step()
        np.testing.assert_allclose(lin.weight.data, true_w, atol=0.05)
        np.testing.assert_allclose(lin.bias.data, [0.3], atol=0.05)


class TestBatchNorm:
    def test_normalises_in_train_mode(self):
        bn = BatchNorm2d(3)
        x = Tensor(np.random.default_rng(0).normal(5.0, 3.0, size=(4, 3, 8, 8)))
        out = bn(x)
        assert abs(out.data.mean()) < 1e-10
        assert out.data.std() == pytest.approx(1.0, rel=1e-2)

    def test_running_stats_update(self):
        bn = BatchNorm2d(1, momentum=0.5)
        x = Tensor(np.full((2, 1, 4, 4), 10.0))
        bn(x)
        assert bn.running_mean[0] == pytest.approx(5.0)  # 0.5*0 + 0.5*10

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(1)
        for _ in range(100):
            bn(Tensor(np.random.default_rng(0).normal(2.0, 1.0, size=(8, 1, 4, 4))))
        bn.eval()
        x = Tensor(np.full((1, 1, 2, 2), 2.0))
        out = bn(x)
        assert abs(out.data.mean()) < 0.2

    def test_gradient_flows(self):
        bn = BatchNorm2d(2)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 2, 4, 4)),
                   requires_grad=True)
        bn(x).sum().backward()
        assert x.grad is not None
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None

    def test_non_4d_rejected(self):
        with pytest.raises(ValueError):
            BatchNorm2d(2)(Tensor(np.ones((2, 2))))


class TestSequentialMisc:
    def test_len_getitem(self):
        net = tiny_net()
        assert len(net) == 4
        assert isinstance(net[2], ReLU)

    def test_maxpool_module(self):
        out = MaxPool2d(2)(Tensor(np.arange(16.0).reshape(1, 1, 4, 4)))
        assert out.shape == (1, 1, 2, 2)

    def test_sigmoid_module(self):
        out = Sigmoid()(Tensor(np.zeros((1, 1))))
        assert out.data[0, 0] == 0.5

    def test_conv_transpose_module(self):
        m = ConvTranspose2d(2, 3, rng=0)
        out = m(Tensor(np.ones((1, 2, 4, 4))))
        assert out.shape == (1, 3, 8, 8)
