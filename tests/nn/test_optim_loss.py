"""Tests for optimizers and loss functions."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Tensor, l1_loss, mse_loss, relative_l2_loss


def rosenbrock(t: Tensor) -> Tensor:
    x, y = t[0], t[1]
    return (1 - x) ** 2 + (y - x**2) ** 2 * 100.0


class TestSGD:
    def test_quadratic_convergence(self):
        x = Tensor([5.0, -3.0], requires_grad=True)
        opt = SGD([x], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            (x * x).sum().backward()
            opt.step()
        np.testing.assert_allclose(x.data, [0, 0], atol=1e-6)

    def test_momentum_accelerates(self):
        def loss_after(momentum, steps=50):
            x = Tensor([5.0], requires_grad=True)
            opt = SGD([x], lr=0.01, momentum=momentum)
            for _ in range(steps):
                opt.zero_grad()
                (x * x).sum().backward()
                opt.step()
            return abs(float(x.data[0]))

        assert loss_after(0.9) < loss_after(0.0)

    def test_weight_decay_shrinks(self):
        x = Tensor([1.0], requires_grad=True)
        opt = SGD([x], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        # Zero loss gradient; decay alone should shrink the weight.
        (x * 0.0).sum().backward()
        opt.step()
        assert abs(float(x.data[0])) < 1.0

    def test_invalid_params(self):
        x = Tensor([1.0], requires_grad=True)
        with pytest.raises(ValueError):
            SGD([x], lr=-1)
        with pytest.raises(ValueError):
            SGD([x], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_parameters_without_grad(self):
        x = Tensor([1.0], requires_grad=True)
        opt = SGD([x], lr=0.1)
        opt.step()  # no backward happened; should be a no-op
        np.testing.assert_allclose(x.data, [1.0])


class TestAdam:
    def test_rosenbrock_progress(self):
        x = Tensor([-1.2, 1.0], requires_grad=True)
        opt = Adam([x], lr=0.02)
        start = float(rosenbrock(x).data)
        for _ in range(2500):
            opt.zero_grad()
            rosenbrock(x).backward()
            opt.step()
        end = float(rosenbrock(x).data)
        assert end < 1e-3 < start

    def test_bias_correction_first_step(self):
        """First Adam step has magnitude ~lr regardless of gradient scale."""
        for scale in (1e-3, 1e3):
            x = Tensor([0.0], requires_grad=True)
            opt = Adam([x], lr=0.1)
            opt.zero_grad()
            (x * scale).sum().backward()
            opt.step()
            assert abs(float(x.data[0])) == pytest.approx(0.1, rel=1e-3)

    def test_invalid_betas(self):
        x = Tensor([1.0], requires_grad=True)
        with pytest.raises(ValueError):
            Adam([x], betas=(1.0, 0.9))

    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_inplace_step_matches_textbook_update(self, weight_decay):
        """The buffer-reusing step must reproduce the allocating formula."""
        rng = np.random.default_rng(0)
        data = rng.normal(size=(4, 3))
        x = Tensor(data.copy(), requires_grad=True)
        opt = Adam([x], lr=0.05, betas=(0.9, 0.999), eps=1e-8,
                   weight_decay=weight_decay)

        # Reference state updated with the plain allocating expressions.
        ref = data.copy()
        m = np.zeros_like(ref)
        v = np.zeros_like(ref)
        for t in range(1, 6):
            grad = rng.normal(size=ref.shape)
            x.grad = grad.copy()
            opt.step()

            g = grad + weight_decay * ref if weight_decay else grad
            m = 0.9 * m + 0.1 * g
            v = 0.999 * v + 0.001 * g * g
            m_hat = m / (1.0 - 0.9**t)
            v_hat = v / (1.0 - 0.999**t)
            ref = ref - 0.05 * m_hat / (np.sqrt(v_hat) + 1e-8)
            np.testing.assert_allclose(x.data, ref, rtol=0, atol=1e-14)

    def test_step_does_not_alias_grad_or_state(self):
        """Scratch reuse must never write through to the gradient array."""
        x = Tensor([1.0, 2.0], requires_grad=True)
        opt = Adam([x], lr=0.1)
        grad = np.array([0.5, -0.5])
        x.grad = grad
        opt.step()
        np.testing.assert_array_equal(grad, [0.5, -0.5])


class TestLosses:
    def test_mse_value(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 2.0])
        assert mse_loss(a, b).item() == pytest.approx(2.0)

    def test_mse_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        mse_loss(a, Tensor([0.0, 0.0])).backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])  # 2x/n

    def test_l1_value(self):
        assert l1_loss(Tensor([1.0, -2.0]), Tensor([0.0, 0.0])).item() == pytest.approx(1.5)

    def test_relative_l2(self):
        pred = Tensor([2.0, 0.0])
        target = Tensor([1.0, 1.0])
        # mse = ((1)^2 + (1)^2)/2 = 1; target energy = 1 -> ratio 1
        assert relative_l2_loss(pred, target).item() == pytest.approx(1.0, rel=1e-6)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse_loss(Tensor([1.0]), Tensor([1.0, 2.0]))
        with pytest.raises(ValueError):
            l1_loss(Tensor([1.0]), Tensor([1.0, 2.0]))
        with pytest.raises(ValueError):
            relative_l2_loss(Tensor([1.0]), Tensor([1.0, 2.0]))
