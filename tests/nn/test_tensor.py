"""Tests for the autodiff Tensor core: forward values and gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor

from .gradcheck import check_grad

arrays = hnp.arrays(
    np.float64, hnp.array_shapes(min_dims=1, max_dims=3, max_side=4),
    elements=st.floats(-3, 3),
)


class TestForward:
    def test_add_sub_mul_div(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        np.testing.assert_allclose((a + b).data, [4, 6])
        np.testing.assert_allclose((a - b).data, [-2, -2])
        np.testing.assert_allclose((a * b).data, [3, 8])
        np.testing.assert_allclose((a / b).data, [1 / 3, 0.5])

    def test_scalar_mixing(self):
        a = Tensor([1.0, 2.0])
        np.testing.assert_allclose((2 + a).data, [3, 4])
        np.testing.assert_allclose((2 * a).data, [2, 4])
        np.testing.assert_allclose((2 - a).data, [1, 0])
        np.testing.assert_allclose((2 / a).data, [2, 1])

    def test_pow_matmul(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a**2).data, [[1, 4], [9, 16]])
        np.testing.assert_allclose((a @ a).data, np.array([[1, 2], [3, 4]]) @ np.array([[1, 2], [3, 4]]))

    def test_reductions(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert a.sum().item() == 10
        assert a.mean().item() == 2.5
        np.testing.assert_allclose(a.sum(axis=0).data, [4, 6])
        np.testing.assert_allclose(a.mean(axis=1, keepdims=True).data, [[1.5], [3.5]])
        assert a.var().item() == pytest.approx(np.var([[1, 2], [3, 4]]))

    def test_shape_ops(self):
        a = Tensor(np.arange(6.0))
        assert a.reshape(2, 3).shape == (2, 3)
        assert a.reshape((3, 2)).shape == (3, 2)
        b = Tensor(np.arange(6.0).reshape(2, 3))
        assert b.transpose().shape == (3, 2)
        assert b[0].shape == (3,)
        assert b[:, 1:].shape == (2, 2)

    def test_elementwise_functions(self):
        a = Tensor([-1.0, 4.0])
        np.testing.assert_allclose(a.abs().data, [1, 4])
        np.testing.assert_allclose(a.exp().data, np.exp([-1, 4]))
        np.testing.assert_allclose(Tensor([4.0]).sqrt().data, [2.0])
        np.testing.assert_allclose(Tensor([1.0]).log().data, [0.0])

    def test_requires_grad_propagates(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])
        assert (a + b).requires_grad
        assert not (b + b).requires_grad

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        d = (a * 2).detach()
        assert not d.requires_grad

    def test_item_and_repr(self):
        t = Tensor(3.5, requires_grad=True)
        assert t.item() == 3.5
        assert "requires_grad" in repr(t)

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            Tensor([1.0]) @ Tensor([2.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])


class TestBackward:
    def test_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3 + 1) ** 2  # y = (3x+1)^2, dy/dx = 6(3x+1) = 42
        y.backward()
        np.testing.assert_allclose(x.grad, [42.0])

    def test_diamond_graph_accumulates(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2
        b = x * 3
        y = a * b  # y = 6x^2, dy/dx = 12x
        y.backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_reused_node(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x * x  # x^3 -> 3x^2 = 12
        y.backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_backward_without_grad_flag_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_bad_seed_shape_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward(np.ones(3))

    def test_custom_seed(self):
        x = Tensor([1.0, 1.0], requires_grad=True)
        (x * 2).backward(np.array([1.0, 5.0]))
        np.testing.assert_allclose(x.grad, [2.0, 10.0])

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        (x * 2).backward()
        np.testing.assert_allclose(x.grad, [4.0])
        x.zero_grad()
        assert x.grad is None


class TestGradcheck:
    def test_add_broadcast(self):
        b = np.array([1.0, 2.0, 3.0])
        check_grad(lambda t: t + Tensor(b), np.ones((2, 3)))

    def test_mul_broadcast_column(self):
        col = np.array([[2.0], [3.0]])
        check_grad(lambda t: t * Tensor(col), np.random.default_rng(0).normal(size=(2, 3)))

    def test_div(self):
        check_grad(lambda t: t / Tensor([2.0, 4.0]), np.array([[1.0, 2.0], [3.0, 4.0]]))

    def test_rdiv(self):
        check_grad(lambda t: 1.0 / t, np.array([1.0, 2.0, -3.0]))

    def test_pow(self):
        check_grad(lambda t: t**3, np.array([1.0, -2.0, 0.5]))

    def test_matmul(self):
        rng = np.random.default_rng(1)
        w = Tensor(rng.normal(size=(3, 2)))
        check_grad(lambda t: t @ w, rng.normal(size=(4, 3)))

    def test_matmul_weight_side(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(4, 3)))
        check_grad(lambda t: x @ t, rng.normal(size=(3, 2)))

    def test_sum_axis(self):
        check_grad(lambda t: t.sum(axis=1), np.arange(6.0).reshape(2, 3))

    def test_mean_keepdims(self):
        check_grad(lambda t: t - t.mean(axis=0, keepdims=True),
                   np.arange(6.0).reshape(2, 3))

    def test_var(self):
        check_grad(lambda t: t.var(), np.array([1.0, 3.0, -2.0, 4.0]))

    def test_var_axis(self):
        check_grad(lambda t: t.var(axis=1), np.arange(8.0).reshape(2, 4))

    def test_abs_away_from_zero(self):
        check_grad(lambda t: t.abs(), np.array([1.0, -2.0, 0.5]))

    def test_exp_log(self):
        check_grad(lambda t: t.exp(), np.array([0.1, -1.0]))
        check_grad(lambda t: t.log(), np.array([0.5, 2.0]))

    def test_reshape_transpose(self):
        check_grad(lambda t: t.reshape(3, 2).transpose() * 2,
                   np.arange(6.0).reshape(2, 3))

    def test_getitem(self):
        check_grad(lambda t: t[1:, :2] * 3, np.arange(9.0).reshape(3, 3))

    @given(arrays)
    @settings(max_examples=20, deadline=None)
    def test_property_sum_grad_is_ones(self, x):
        t = Tensor(x, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))

    @given(arrays)
    @settings(max_examples=20, deadline=None)
    def test_property_linear_grad(self, x):
        """d(sum(3x + 1))/dx == 3 everywhere."""
        t = Tensor(x, requires_grad=True)
        (t * 3 + 1).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(x, 3.0))
