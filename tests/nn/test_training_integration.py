"""Integration tests: the nn substrate learns real spatial structure."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    BatchNorm2d,
    Conv2d,
    ReLU,
    Sequential,
    Tensor,
    mse_loss,
)


def make_edge_task(n=24, size=8, seed=0):
    """Inputs with a vertical edge at a random column; target = the
    edge-response map of a fixed Sobel-like filter (purely local, so a
    single conv layer can solve it exactly)."""
    rng = np.random.default_rng(seed)
    X = np.zeros((n, 1, size, size))
    for k in range(n):
        col = rng.integers(1, size - 1)
        X[k, 0, :, col:] = 1.0
    kernel = np.array([[-1.0, 0.0, 1.0]] * 3) / 3.0
    from repro.nn import conv2d
    Y = conv2d(Tensor(X), Tensor(kernel[None, None]), padding=1).data
    return X, Y


class TestLearnsConvolution:
    def test_single_conv_recovers_filter(self):
        X, Y = make_edge_task()
        layer = Conv2d(1, 1, 3, padding=1, rng=1)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(150):
            opt.zero_grad()
            loss = mse_loss(layer(Tensor(X)), Tensor(Y))
            loss.backward()
            opt.step()
        assert loss.item() < 1e-3

    def test_two_layer_net_fits_nonlinear_map(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(16, 1, 6, 6))
        Y = np.maximum(X, 0.0) * 2.0 + 1.0  # relu-shaped target
        net = Sequential(
            Conv2d(1, 4, 3, padding=1, rng=3), ReLU(),
            Conv2d(4, 1, 1, rng=3),
        )
        opt = Adam(net.parameters(), lr=0.02)
        first = None
        for _ in range(200):
            opt.zero_grad()
            loss = mse_loss(net(Tensor(X)), Tensor(Y))
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < 0.05 * first


class TestBatchNormBehaviour:
    def test_bn_net_stable_under_input_shift(self):
        """BatchNorm absorbs a global input offset in train mode.

        No padding: zero-padding borders would break the uniform shift."""
        net = Sequential(Conv2d(1, 2, 3, padding=0, rng=0), BatchNorm2d(2))
        x = np.random.default_rng(0).normal(size=(4, 1, 6, 6))
        out1 = net(Tensor(x)).data
        out2 = net(Tensor(x + 100.0)).data
        np.testing.assert_allclose(out1, out2, atol=1e-6)

    def test_eval_mode_is_deterministic_per_sample(self):
        net = Sequential(Conv2d(1, 2, 3, padding=1, rng=0), BatchNorm2d(2))
        rng = np.random.default_rng(1)
        for _ in range(20):
            net(Tensor(rng.normal(size=(4, 1, 6, 6))))
        net.eval()
        x = rng.normal(size=(1, 1, 6, 6))
        single = net(Tensor(x)).data
        batched = net(Tensor(np.concatenate([x, rng.normal(size=(3, 1, 6, 6))])))
        np.testing.assert_allclose(batched.data[:1], single, rtol=1e-12)


class TestOptimizerRobustness:
    @pytest.mark.parametrize("opt_cls,kwargs", [
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (Adam, {"lr": 0.05}),
    ])
    def test_both_optimizers_solve_least_squares(self, opt_cls, kwargs):
        rng = np.random.default_rng(3)
        A = rng.normal(size=(20, 4))
        x_true = rng.normal(size=(4, 1))
        b = A @ x_true
        x = Tensor(np.zeros((4, 1)), requires_grad=True)
        opt = opt_cls([x], **kwargs)
        for _ in range(500):
            opt.zero_grad()
            residual = Tensor(A) @ x - Tensor(b)
            (residual * residual).mean().backward()
            opt.step()
        np.testing.assert_allclose(x.data, x_true, atol=1e-2)
