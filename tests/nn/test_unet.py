"""Tests for the UNet backbone."""

import numpy as np
import pytest

from repro.nn import Adam, Tensor, UNet, mse_loss


class TestShapes:
    @pytest.mark.parametrize("hw", [(8, 8), (12, 16), (10, 10)])
    def test_output_matches_input_size(self, hw):
        net = UNet(in_channels=3, out_channels=1, base_channels=4, depth=2, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 3, *hw)))
        out = net(x)
        assert out.shape == (1, 1, *hw)

    def test_odd_sizes_padded_and_cropped(self):
        net = UNet(in_channels=1, base_channels=4, depth=2, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 1, 7, 9)))
        assert net(x).shape == (2, 1, 7, 9)

    def test_depth_three(self):
        net = UNet(in_channels=2, base_channels=2, depth=3, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 16, 16)))
        assert net(x).shape == (1, 1, 16, 16)

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            UNet(in_channels=1, depth=0)

    def test_non_4d_rejected(self):
        net = UNet(in_channels=1, base_channels=2, depth=1, rng=0)
        with pytest.raises(ValueError):
            net(Tensor(np.ones((1, 8, 8))))

    def test_receptive_field_grows_with_depth(self):
        shallow = UNet(in_channels=1, depth=1, base_channels=2, rng=0)
        deep = UNet(in_channels=1, depth=3, base_channels=2, rng=0)
        assert deep.receptive_field() > shallow.receptive_field()


class TestTraining:
    def test_deterministic_init(self):
        a = UNet(in_channels=1, base_channels=2, depth=1, rng=42)
        b = UNet(in_channels=1, base_channels=2, depth=1, rng=42)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 1, 8, 8)))
        a.eval(), b.eval()
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_gradients_reach_all_parameters(self):
        net = UNet(in_channels=2, base_channels=2, depth=2, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 8, 8)))
        net(x).sum().backward()
        missing = [n for n, p in net.named_parameters() if p.grad is None]
        assert not missing, f"parameters with no gradient: {missing}"

    def test_overfits_single_sample(self):
        """A small UNet must be able to memorise one input->output pair."""
        rng = np.random.default_rng(0)
        net = UNet(in_channels=1, base_channels=4, depth=1, rng=1)
        x = Tensor(rng.normal(size=(1, 1, 8, 8)))
        target = Tensor(rng.normal(size=(1, 1, 8, 8)))
        opt = Adam(net.parameters(), lr=1e-2)
        first = None
        for step in range(400):
            opt.zero_grad()
            loss = mse_loss(net(x), target)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < 0.05 * first

    def test_input_gradient_available(self):
        """The surrogate use-case: gradients w.r.t. the *input* layout."""
        net = UNet(in_channels=1, base_channels=2, depth=1, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 1, 8, 8)),
                   requires_grad=True)
        net(x).sum().backward()
        assert x.grad is not None
        assert x.grad.shape == (1, 1, 8, 8)
        assert np.any(x.grad != 0)


class TestUpModes:
    def test_transpose_mode_shapes(self):
        net = UNet(in_channels=2, base_channels=4, depth=2, rng=0,
                   up_mode="transpose")
        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 12, 12)))
        assert net(x).shape == (1, 1, 12, 12)

    def test_transpose_mode_gradients_flow(self):
        net = UNet(in_channels=1, base_channels=2, depth=1, rng=0,
                   up_mode="transpose")
        x = Tensor(np.random.default_rng(1).normal(size=(1, 1, 8, 8)),
                   requires_grad=True)
        net(x).sum().backward()
        assert x.grad is not None
        missing = [n for n, p in net.named_parameters() if p.grad is None]
        assert not missing

    def test_transpose_mode_trains(self):
        rng = np.random.default_rng(0)
        net = UNet(in_channels=1, base_channels=4, depth=1, rng=1,
                   up_mode="transpose")
        x = Tensor(rng.normal(size=(1, 1, 8, 8)))
        target = Tensor(rng.normal(size=(1, 1, 8, 8)))
        opt = Adam(net.parameters(), lr=1e-2)
        first = None
        for _ in range(200):
            opt.zero_grad()
            loss = mse_loss(net(x), target)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < 0.3 * first

    def test_invalid_up_mode(self):
        with pytest.raises(ValueError):
            UNet(in_channels=1, up_mode="magic")
