"""Vectorised conv adjoints vs explicit scatter loops, and dtype modes.

``conv2d``'s input gradient and ``conv_transpose2d``'s forward share one
dilate-pad-flip einsum formulation; these tests pin it against the naive
loop implementations it replaced, including the awkward stride-2 shapes
where the dilated gradient does not cover the padded input.  The dtype
tests cover the opt-in float32 compute mode.
"""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    UNet,
    compute_dtype,
    conv2d,
    conv_transpose2d,
    get_default_dtype,
    set_default_dtype,
)


def brute_conv2d_input_grad(grad, w, x_shape, stride, padding):
    """Scatter-loop adjoint of conv2d with respect to its input."""
    B, C, H, W = x_shape
    O, _, kh, kw = w.shape
    gx = np.zeros((B, C, H + 2 * padding, W + 2 * padding))
    Ho, Wo = grad.shape[2:]
    for bb in range(B):
        for o in range(O):
            for i in range(Ho):
                for j in range(Wo):
                    gx[bb, :, i * stride : i * stride + kh,
                       j * stride : j * stride + kw] += grad[bb, o, i, j] * w[o]
    if padding:
        gx = gx[:, :, padding:-padding, padding:-padding]
    return gx


def brute_conv_transpose2d(x, w, stride):
    """Scatter-loop transposed convolution forward."""
    B, C, H, W = x.shape
    _, O, kh, kw = w.shape
    out = np.zeros((B, O, (H - 1) * stride + kh, (W - 1) * stride + kw))
    for bb in range(B):
        for c in range(C):
            for i in range(H):
                for j in range(W):
                    out[bb, :, i * stride : i * stride + kh,
                        j * stride : j * stride + kw] += x[bb, c, i, j] * w[c]
    return out


class TestVectorizedConvAdjoint:
    # Heights 6 and 7 at stride 2 respectively do and do not make the
    # dilated upstream gradient cover the padded input exactly — both
    # branches of the einsum formulation get exercised.
    @pytest.mark.parametrize("stride,padding,H,W", [
        (1, 0, 6, 7), (1, 1, 6, 7), (2, 0, 7, 7), (2, 1, 7, 7),
        (2, 1, 6, 6), (2, 0, 6, 8), (3, 1, 8, 7),
    ])
    def test_input_grad_matches_scatter_loop(self, stride, padding, H, W):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, H, W))
        w = rng.normal(size=(4, 3, 3, 3))
        xt = Tensor(x, requires_grad=True)
        out = conv2d(xt, Tensor(w), stride=stride, padding=padding)
        upstream = rng.normal(size=out.shape)
        out.backward(upstream)
        expected = brute_conv2d_input_grad(upstream, w, x.shape, stride, padding)
        np.testing.assert_allclose(xt.grad, expected, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("stride,kh", [(1, 3), (2, 2), (2, 3), (3, 2)])
    def test_transpose_forward_matches_scatter_loop(self, stride, kh):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 4, 5))
        w = rng.normal(size=(3, 2, kh, kh))
        out = conv_transpose2d(Tensor(x), Tensor(w), stride=stride)
        np.testing.assert_allclose(out.data, brute_conv_transpose2d(x, w, stride),
                                   rtol=1e-12, atol=1e-12)


class TestComputeDtype:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64
        assert Tensor(np.zeros(3)).dtype == np.float64

    def test_context_manager_scopes_the_switch(self):
        with compute_dtype(np.float32):
            assert get_default_dtype() == np.float32
            assert Tensor([1.0, 2.0]).dtype == np.float32
        assert get_default_dtype() == np.float64

    def test_context_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with compute_dtype(np.float32):
                raise RuntimeError("boom")
        assert get_default_dtype() == np.float64

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_module_to_dtype_casts_everything(self):
        unet = UNet(in_channels=2, out_channels=1, base_channels=4,
                    depth=1, rng=0)
        unet.to_dtype(np.float32)
        for p in unet.parameters():
            assert p.data.dtype == np.float32

    def test_float32_forward_close_to_float64(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 2, 8, 8))
        unet64 = UNet(in_channels=2, out_channels=1, base_channels=4,
                      depth=1, rng=0)
        unet64.eval()
        ref = unet64(Tensor(x)).data

        unet32 = UNet(in_channels=2, out_channels=1, base_channels=4,
                      depth=1, rng=0)
        unet32.eval()
        unet32.to_dtype(np.float32)
        with compute_dtype(np.float32):
            out = unet32(Tensor(x)).data
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-3)
