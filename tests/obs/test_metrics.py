"""Metrics correctness: windowed mean, nearest-rank percentiles,
histogram key stability, registry bounds and thread-safety, and the
ServeStats facade regressions."""

import threading

import pytest

from repro.obs.metrics import (
    OVERFLOW_BUCKET,
    Histogram,
    LatencyTracker,
    MetricsRegistry,
    nearest_rank_index,
)
from repro.serve.stats import BATCH_HISTOGRAM, ServeStats


class TestNearestRank:
    def test_textbook_values(self):
        # 100 samples: p50 is the 50th smallest (index 49) — no banker's
        # rounding pulling it to index 50.
        assert nearest_rank_index(50, 100) == 49
        assert nearest_rank_index(95, 100) == 94
        assert nearest_rank_index(99, 100) == 98

    def test_monotone_in_q(self):
        for n in (1, 2, 3, 7, 100, 101):
            indices = [nearest_rank_index(q, n) for q in range(1, 101)]
            assert indices == sorted(indices)
            assert indices[-1] == n - 1

    def test_small_windows(self):
        assert nearest_rank_index(50, 1) == 0
        assert nearest_rank_index(99, 2) == 1
        assert nearest_rank_index(50, 2) == 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            nearest_rank_index(50, 0)


class TestLatencyTracker:
    def test_windowed_mean_matches_percentile_window(self):
        """Regression: mean must be over the same sliding window as the
        percentiles, not the lifetime."""
        tracker = LatencyTracker(window=8)
        # Slow warm-up the window must forget entirely.
        for _ in range(100):
            tracker.record(1.0)
        for v in range(1, 9):  # window now holds 0.001..0.008 s
            tracker.record(v / 1000.0)
        snap = tracker.snapshot()
        assert snap["count"] == 8
        assert snap["count_total"] == 108
        assert snap["mean_ms"] == pytest.approx(4.5)  # mean of 1..8 ms
        assert snap["p50_ms"] == pytest.approx(4.0)
        assert snap["p99_ms"] == pytest.approx(8.0)

    def test_exactly_at_window_boundary(self):
        tracker = LatencyTracker(window=4)
        for v in (0.001, 0.002, 0.003, 0.004):
            tracker.record(v)
        snap = tracker.snapshot()
        assert snap["count"] == snap["count_total"] == 4
        assert snap["mean_ms"] == pytest.approx(2.5)

    def test_empty_snapshot(self):
        snap = LatencyTracker().snapshot()
        assert snap == {"count": 0, "count_total": 0}

    def test_percentiles_on_100_samples(self):
        tracker = LatencyTracker(window=200)
        for ms in range(1, 101):
            tracker.record(ms / 1000.0)
        snap = tracker.snapshot()
        assert snap["p50_ms"] == pytest.approx(50.0)
        assert snap["p95_ms"] == pytest.approx(95.0)
        assert snap["p99_ms"] == pytest.approx(99.0)


class TestHistogram:
    def test_string_keys_sorted_numerically(self):
        histogram = Histogram()
        for key in (10, 2, 1, 33, 2):
            histogram.record(key)
        snap = histogram.snapshot()
        assert list(snap) == ["1", "2", "10", "33"]  # numeric, not lexicographic
        assert snap["2"] == 2
        assert all(isinstance(k, str) for k in snap)

    def test_overflow_bucket(self):
        histogram = Histogram(max_buckets=3)
        for key in range(10):
            histogram.record(key)
        histogram.record(1)  # existing keys still count normally
        snap = histogram.snapshot()
        assert snap[OVERFLOW_BUCKET] == 7
        assert snap["1"] == 2
        assert len(snap) == 4  # 3 real buckets + overflow


class TestMetricsRegistry:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.incr("jobs", 2)
        registry.observe("batch", 4)
        registry.record_latency("execute", 0.01)
        registry.ensure_latency("queue_wait")
        snap = registry.snapshot()
        assert snap["counters"] == {"jobs": 2}
        assert snap["histograms"]["batch"] == {"4": 1}
        assert snap["latency"]["execute"]["count"] == 1
        assert snap["latency"]["queue_wait"]["count"] == 0
        assert "dropped_metrics" not in snap

    def test_name_cap_counts_drops(self):
        registry = MetricsRegistry(max_metrics=2)
        registry.incr("a")
        registry.record_latency("b", 0.1)
        registry.incr("c")  # over the cap
        registry.observe("d", 1)  # over the cap
        snap = registry.snapshot()
        assert set(snap["counters"]) == {"a"}
        assert snap["dropped_metrics"] == 2
        registry.incr("a")  # existing names still work at the cap
        assert registry.snapshot()["counters"]["a"] == 2

    def test_concurrent_writers(self):
        registry = MetricsRegistry()
        n_threads, per_thread = 8, 200
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for i in range(per_thread):
                registry.incr("ops")
                registry.observe("sizes", i % 4)
                registry.record_latency("stage", 0.001)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = registry.snapshot()
        total = n_threads * per_thread
        assert snap["counters"]["ops"] == total
        assert sum(snap["histograms"]["sizes"].values()) == total
        assert snap["latency"]["stage"]["count_total"] == total

    def test_reset(self):
        registry = MetricsRegistry()
        registry.incr("x")
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestServeStatsFacade:
    def test_window_overflow_regression(self):
        """The PR 3 bug: lifetime mean next to windowed percentiles.
        After overflowing the window, every reported latency statistic
        must describe the same recent window."""
        stats = ServeStats(window=16)
        for _ in range(500):
            stats.record_latency("execute", 2.0)  # slow history
        for _ in range(16):
            stats.record_latency("execute", 0.004)  # recent steady state
        latency = stats.snapshot()["latency"]["execute"]
        assert latency["count"] == 16
        assert latency["count_total"] == 516
        # Pre-fix the mean was ~1938 ms while p50 said 4 ms.
        assert latency["mean_ms"] == pytest.approx(4.0)
        assert latency["p50_ms"] == pytest.approx(4.0)
        assert latency["p99_ms"] == pytest.approx(4.0)

    def test_batch_histogram_string_keys(self):
        stats = ServeStats()
        for size in (16, 2, 9, 2):
            stats.record_batch(size)
        snap = stats.snapshot()
        assert list(snap["batch_histogram"]) == ["2", "9", "16"]
        assert snap["batch_histogram"]["2"] == 2

    def test_stage_validation_and_counters(self):
        stats = ServeStats()
        stats.incr("jobs_completed")
        with pytest.raises(KeyError):
            stats.record_latency("nonsense", 0.1)
        snap = stats.snapshot()
        assert snap["counters"]["jobs_completed"] == 1
        assert set(snap["latency"]) == set(ServeStats.STAGES)

    def test_registry_exposed(self):
        stats = ServeStats()
        stats.record_batch(3)
        assert stats.registry.snapshot()["histograms"][BATCH_HISTOGRAM] == {"3": 1}
