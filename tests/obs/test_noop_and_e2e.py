"""Acceptance-level obs tests.

* Instrumentation must be invisible when disabled: identical bitwise
  results, a shared no-op singleton on the hot path.
* ``repro trace fill`` must emit a schema-valid JSONL trace covering
  all four instrumented subsystems (nn, cmp, opt, train).
* Timing audit guard: benches and library code must never time with
  wall-clock ``time.time()``.
"""

import pathlib
import re

import numpy as np
import pytest

from repro.cli import main
from repro.cmp import CmpSimulator
from repro.layout import make_design_a
from repro.obs import trace
from repro.obs.trace import NOOP_SPAN, Tracer, capture, validate_trace_path

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    assert trace.active() is None
    yield
    assert trace.active() is None


class TestNoopGuarantees:
    def test_disabled_span_is_shared_singleton(self):
        # No allocation on the disabled path: same object every call.
        assert trace.span("a", cat="x", attr=1) is NOOP_SPAN
        assert trace.span("b") is trace.span("c")
        assert trace.stages("s") is trace.NOOP_STAGES

    def test_simulate_bitwise_identical_with_tracing(self):
        """Tracing on vs off must not perturb a single bit of the
        simulator output — instrumentation only observes."""
        layout = make_design_a(rows=8, cols=8, seed=7)
        simulator = CmpSimulator()

        baseline = simulator.simulate_layout(layout)
        with capture(tracer=Tracer()) as tracer:
            traced = simulator.simulate_layout(layout)
        again = simulator.simulate_layout(layout)

        for attr in ("height", "dishing", "erosion", "pressure",
                     "step_height"):
            a = getattr(baseline, attr)
            b = getattr(traced, attr)
            c = getattr(again, attr)
            assert a.tobytes() == b.tobytes()
            assert a.tobytes() == c.tobytes()
        # And the traced run actually recorded the cmp spans.
        names = {r["name"] for r in tracer.records("span")}
        assert "cmp.simulate" in names
        assert "cmp.polish" in names

    def test_fill_bitwise_identical_with_tracing(self, tmp_path):
        """End-to-end acceptance: the fill vector produced with tracing
        enabled is bitwise identical to the plain run."""
        layout_path = tmp_path / "layout.json"
        assert main(["gen-design", "A", "--rows", "8", "--cols", "8",
                     "--seed", "3", "-o", str(layout_path)]) == 0
        plain_out = tmp_path / "plain.npz"
        traced_out = tmp_path / "traced.npz"
        argv = [str(layout_path), "--method", "lin"]
        assert main(["fill", *argv, "--fill-out", str(plain_out)]) == 0
        assert main(["trace", "-o", str(tmp_path / "t.jsonl"),
                     "fill", *argv, "--fill-out", str(traced_out)]) == 0
        plain = np.load(plain_out)["fill"]
        traced = np.load(traced_out)["fill"]
        assert plain.tobytes() == traced.tobytes()


class TestTraceCli:
    def test_trace_fill_covers_all_subsystems(self, tmp_path, capsys):
        """`repro trace fill --method neurfill-pkb` emits a schema-valid
        trace with spans/events from nn, cmp, opt and train."""
        layout_path = tmp_path / "layout.json"
        assert main(["gen-design", "A", "--rows", "8", "--cols", "8",
                     "--seed", "3", "-o", str(layout_path)]) == 0
        trace_path = tmp_path / "trace.jsonl"
        rc = main(["trace", "-o", str(trace_path),
                   "fill", str(layout_path), "--method", "neurfill-pkb",
                   "--train-samples", "6", "--train-epochs", "2"])
        assert rc == 0
        records = validate_trace_path(trace_path)
        cats = {r["cat"] for r in records[1:]}
        assert {"nn", "cmp", "opt", "train"} <= cats
        names = {r["name"] for r in records[1:]}
        assert "train.fit" in names
        assert "cmp.polish.preston" in names
        assert "opt.sqp" in names
        assert any(name.startswith("nn.") for name in names)
        err = capsys.readouterr().err
        assert "repro trace summary" in err
        assert str(trace_path) in err
        # Tracer must be deactivated after the command returns.
        assert trace.active() is None

    def test_trace_requires_subcommand(self):
        assert main(["trace"]) == 2
        assert main(["trace", "trace", "simulate", "x.json"]) == 2

    def test_profile_flag(self, tmp_path, capsys):
        layout_path = tmp_path / "layout.json"
        assert main(["gen-design", "A", "--rows", "8", "--cols", "8",
                     "-o", str(layout_path)]) == 0
        assert main(["--profile", "simulate", str(layout_path)]) == 0
        captured = capsys.readouterr()
        assert "repro trace summary" in captured.err
        assert "cmp.simulate" in captured.err
        assert "post-CMP dH" in captured.out  # stdout untouched


class TestTimingAudit:
    """Wall-clock ``time.time()`` is banned from timing paths: it jumps
    with NTP/DST and breaks duration math.  Benchmarks must use
    ``time.perf_counter``; the serve queue uses ``time.monotonic``."""

    def test_no_wall_clock_timing_anywhere(self):
        offenders = []
        for sub in ("src", "benchmarks"):
            for path in sorted((REPO_ROOT / sub).rglob("*.py")):
                text = path.read_text(encoding="utf-8")
                if re.search(r"\btime\.time\(\)", text):
                    offenders.append(str(path.relative_to(REPO_ROOT)))
        assert offenders == [], (
            f"wall-clock time.time() used for timing in: {offenders}; "
            f"use time.perf_counter() (durations) or time.monotonic() "
            f"(deadlines) instead"
        )
