"""Tracer semantics: nesting, ordering, threading, export, bounds."""

import json
import threading

import pytest

from repro.obs import trace
from repro.obs.trace import (
    NOOP_SPAN,
    TRACE_SCHEMA,
    Tracer,
    capture,
    validate_trace_lines,
    validate_trace_path,
)


def spans_by_name(tracer):
    return {r["name"]: r for r in tracer.records("span")}


class TestNesting:
    def test_parent_child_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = spans_by_name(tracer)
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]

    def test_children_recorded_before_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [r["name"] for r in tracer.records("span")]
        assert names == ["inner", "outer"]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = spans_by_name(tracer)
        assert by_name["a"]["parent"] == by_name["outer"]["id"]
        assert by_name["b"]["parent"] == by_name["outer"]["id"]

    def test_event_parented_to_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.event("marker", cat="test", value=3)
        (event,) = tracer.records("event")
        assert event["parent"] == spans_by_name(tracer)["outer"]["id"]
        assert event["attrs"] == {"value": 3}
        assert "dur_us" not in event

    def test_attrs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", cat="test", a=1) as span:
            span.set(b=2)
        record = spans_by_name(tracer)["s"]
        assert record["attrs"] == {"a": 1, "b": 2}
        assert record["cat"] == "test"
        assert record["dur_us"] >= 0


class TestThreadSafety:
    def test_concurrent_recorders(self):
        """Many threads record nested spans at once; nothing is lost,
        ids stay unique, and nesting never crosses threads."""
        tracer = Tracer()
        per_thread, n_threads = 50, 8
        barrier = threading.Barrier(n_threads)

        def work(tid):
            barrier.wait()
            for i in range(per_thread):
                with tracer.span(f"outer-{tid}"):
                    with tracer.span(f"inner-{tid}"):
                        tracer.event(f"ev-{tid}", i=i)

        threads = [threading.Thread(target=work, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        spans = tracer.records("span")
        events = tracer.records("event")
        assert len(spans) == n_threads * per_thread * 2
        assert len(events) == n_threads * per_thread
        all_ids = [r["id"] for r in spans + events]
        assert len(set(all_ids)) == len(all_ids)
        span_thread = {r["id"]: r["thread"] for r in spans}
        for record in spans + events:
            if record["parent"] is not None:
                assert span_thread[record["parent"]] == record["thread"]

    def test_bounded_records_and_dropped(self):
        tracer = Tracer(max_records=5)
        for i in range(9):
            tracer.event(f"e{i}")
        assert len(tracer.records()) == 5
        assert tracer.dropped == 4
        assert tracer.meta()["dropped"] == 4


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", cat="test", k=1):
            tracer.event("ev", cat="test")
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        records = validate_trace_path(path)
        meta = records[0]
        assert meta["schema"] == TRACE_SCHEMA
        assert meta["clock"] == "perf_counter"
        assert meta["spans"] == 1 and meta["events"] == 1
        names = {r["name"] for r in records[1:]}
        assert names == {"outer", "ev"}

    def test_numpy_attrs_serialise(self, tmp_path):
        np = pytest.importorskip("numpy")
        tracer = Tracer()
        with tracer.span("s", cat="test", f=np.float64(0.5),
                         i=np.int64(3), b=np.bool_(True),
                         a=np.arange(2)):
            pass
        lines = list(tracer.iter_jsonl())
        attrs = json.loads(lines[1])["attrs"]
        assert attrs == {"f": 0.5, "i": 3, "b": True, "a": [0, 1]}

    def test_validate_rejects_missing_meta(self):
        with pytest.raises(ValueError, match="meta"):
            validate_trace_lines(['{"type": "span"}'])

    def test_validate_rejects_orphan_parent(self):
        lines = [
            json.dumps({"type": "meta", "schema": TRACE_SCHEMA,
                        "clock": "perf_counter", "version": "0",
                        "spans": 0, "events": 1, "dropped": 0}),
            json.dumps({"type": "event", "name": "e", "cat": "c", "id": 2,
                        "parent": 99, "thread": 1, "t0_us": 0}),
        ]
        with pytest.raises(ValueError, match="parent 99"):
            validate_trace_lines(lines)


class TestActivation:
    def test_disabled_module_helpers_are_noops(self):
        assert trace.active() is None
        assert trace.span("x") is NOOP_SPAN
        assert trace.event("x") is None  # returns without recording
        assert trace.stages("x") is trace.NOOP_STAGES

    def test_capture_restores_previous_tracer(self, tmp_path):
        outer = trace.activate()
        try:
            inner = Tracer()
            with capture(path=tmp_path / "t.jsonl", tracer=inner):
                assert trace.active() is inner
                with trace.span("inside", cat="test"):
                    pass
            assert trace.active() is outer
            assert [r["name"] for r in inner.records()] == ["inside"]
            validate_trace_path(tmp_path / "t.jsonl")
        finally:
            trace.deactivate()
        assert trace.active() is None

    def test_stage_timer_accumulates(self):
        tracer = Tracer()
        with capture(tracer=tracer):
            with trace.stages("loop", cat="test") as obs:
                for _ in range(10):
                    with obs.measure("a"):
                        pass
                    with obs.measure("b"):
                        pass
                obs.set(extra=1)
        by_name = spans_by_name(tracer)
        assert set(by_name) == {"loop", "loop.a", "loop.b"}
        assert by_name["loop.a"]["attrs"]["calls"] == 10
        assert by_name["loop.a"]["parent"] == by_name["loop"]["id"]
        assert by_name["loop"]["attrs"] == {"extra": 1}
