"""Lockstep batched multi-start SQP vs the sequential driver.

The broker (:func:`refine_starting_points_batched`) must reproduce the
sequential results bitwise because both drive the same
:meth:`SqpOptimizer.maximize_steps` generators — these tests pin that
contract on analytic objectives, plus the stacked starting-point API.
"""

import numpy as np
import pytest

from repro.config import rng_from_seed
from repro.optimize import (
    SqpOptimizer,
    random_starting_points,
    random_starting_points_stacked,
    refine_starting_points,
    refine_starting_points_batched,
)


def quartic_value_grad(x):
    """Smooth multimodal 2-D objective with analytic gradient."""
    x = np.ravel(x)
    value = -np.sum((x - 0.3) ** 2 * (x - 0.7) ** 2)
    grad = -2 * (x - 0.3) * (x - 0.7) * (2 * x - 1.0)
    return float(value), grad


def quartic_batch(points, need_grad):
    """Row-wise batched oracle built from the sequential one."""
    K = points.shape[0]
    values = np.empty(K)
    grads = np.zeros_like(points)
    for k in range(K):
        v, g = quartic_value_grad(points[k])
        values[k] = v
        if need_grad[k]:
            grads[k] = g.reshape(points[k].shape)
    return values, grads


class TestBatchedBroker:
    def assert_results_identical(self, seq, bat):
        assert len(seq) == len(bat)
        for a, b in zip(seq, bat):
            np.testing.assert_array_equal(a.x, b.x)
            assert a.value == b.value
            assert a.iterations == b.iterations
            assert a.evaluations == b.evaluations
            assert a.converged == b.converged
            assert a.history == b.history

    @pytest.mark.parametrize("hessian", ["lbfgs", "dense"])
    def test_matches_sequential_bitwise(self, hessian):
        lo, hi = np.zeros(2), np.ones(2)
        starts = random_starting_points(lo, hi, 6, seed=0)
        opt = SqpOptimizer(max_iter=40, tol=1e-10, hessian=hessian)
        seq = refine_starting_points(quartic_value_grad, starts, lo, hi, opt)
        bat = refine_starting_points_batched(quartic_batch, starts, lo, hi, opt)
        self.assert_results_identical(seq, bat)

    def test_mixed_convergence_dropout(self):
        """Starts converging at different iteration counts drop out of the
        batch without disturbing the still-live ones."""
        lo, hi = np.zeros(2), np.ones(2)
        # One start already at an optimum (instant convergence), others far.
        starts = [np.array([0.3, 0.3]), np.array([0.01, 0.99]),
                  np.array([0.55, 0.45])]
        opt = SqpOptimizer(max_iter=60, tol=1e-10)
        seq = refine_starting_points(quartic_value_grad, starts, lo, hi, opt)
        bat = refine_starting_points_batched(quartic_batch, starts, lo, hi, opt)
        self.assert_results_identical(seq, bat)
        assert seq[0].iterations < seq[1].iterations

    def test_stacked_array_input(self):
        lo, hi = np.zeros(3), np.ones(3)
        stacked = random_starting_points_stacked(lo, hi, 4, seed=2)
        bat = refine_starting_points_batched(quartic_batch, stacked, lo, hi,
                                             SqpOptimizer(max_iter=30, tol=1e-9))
        assert len(bat) == 4

    def test_single_start(self):
        lo, hi = np.zeros(2), np.ones(2)
        starts = [np.array([0.1, 0.9])]
        opt = SqpOptimizer(max_iter=40, tol=1e-10)
        seq = refine_starting_points(quartic_value_grad, starts, lo, hi, opt)
        bat = refine_starting_points_batched(quartic_batch, starts, lo, hi, opt)
        self.assert_results_identical(seq, bat)

    def test_batch_sizes_shrink_as_starts_finish(self):
        sizes = []

        def recording_batch(points, need_grad):
            sizes.append(points.shape[0])
            return quartic_batch(points, need_grad)

        lo, hi = np.zeros(2), np.ones(2)
        starts = [np.array([0.3, 0.3]), np.array([0.05, 0.95])]
        refine_starting_points_batched(recording_batch, starts, lo, hi,
                                       SqpOptimizer(max_iter=60, tol=1e-10))
        assert sizes[0] == 2
        assert sizes[-1] == 1  # the hard start outlives the easy one

    def test_empty_starts_rejected(self):
        with pytest.raises(ValueError):
            refine_starting_points_batched(
                quartic_batch, [], np.zeros(1), np.ones(1)
            )


class TestStackedStartingPoints:
    def test_matches_sequential_rng_stream(self):
        """One (K, *shape) draw consumes the stream exactly like K
        per-start draws, so old seeds keep producing the old points."""
        lo = np.zeros((2, 3))
        hi = np.full((2, 3), 5.0)
        stacked = random_starting_points_stacked(lo, hi, 5, seed=3)
        rng = rng_from_seed(3)
        for k in range(5):
            expected = lo + rng.random(lo.shape) * (hi - lo)
            np.testing.assert_array_equal(stacked[k], expected)

    def test_list_api_is_view_of_stacked(self):
        lo, hi = np.zeros(4), np.ones(4)
        stacked = random_starting_points_stacked(lo, hi, 3, seed=1)
        listed = random_starting_points(lo, hi, 3, seed=1)
        assert len(listed) == 3
        for k in range(3):
            np.testing.assert_array_equal(listed[k], stacked[k])

    def test_shape_and_feasibility(self):
        lo = np.zeros((2, 3))
        hi = np.full((2, 3), 5.0)
        stacked = random_starting_points_stacked(lo, hi, 7, seed=0)
        assert stacked.shape == (7, 2, 3)
        assert np.all(stacked >= lo) and np.all(stacked <= hi)

    def test_count_positive(self):
        with pytest.raises(ValueError):
            random_starting_points_stacked(np.zeros(1), np.ones(1), 0)
