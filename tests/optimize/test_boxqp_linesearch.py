"""Tests for the box-QP solver and the projected line search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimize import projected_armijo, solve_box_qp


class TestBoxQp:
    def test_unconstrained_minimum_inside_box(self):
        B = np.diag([2.0, 4.0])
        g = np.array([-2.0, -4.0])  # minimiser at (1, 1)
        res = solve_box_qp(B, g, np.full(2, -5.0), np.full(2, 5.0))
        assert res.converged
        np.testing.assert_allclose(res.x, [1.0, 1.0], atol=1e-8)

    def test_minimum_clipped_to_bound(self):
        B = np.eye(2) * 2
        g = np.array([-10.0, 0.0])  # unconstrained min at (5, 0)
        res = solve_box_qp(B, g, np.zeros(2), np.ones(2))
        np.testing.assert_allclose(res.x, [1.0, 0.0], atol=1e-8)

    def test_correlated_hessian(self):
        B = np.array([[2.0, 0.8], [0.8, 1.0]])
        g = np.array([-1.0, -1.0])
        lo, hi = np.full(2, -10.0), np.full(2, 10.0)
        res = solve_box_qp(B, g, lo, hi)
        np.testing.assert_allclose(res.x, np.linalg.solve(B, -g), atol=1e-6)

    def test_value_reported(self):
        B = np.eye(1)
        g = np.array([-1.0])
        res = solve_box_qp(B, g, np.array([-2.0]), np.array([2.0]))
        assert res.value == pytest.approx(-0.5)

    def test_infeasible_bounds_rejected(self):
        with pytest.raises(ValueError):
            solve_box_qp(np.eye(1), np.zeros(1), np.array([1.0]), np.array([0.0]))

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            solve_box_qp(np.eye(3), np.zeros(2), np.zeros(2), np.ones(2))

    @given(seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_property_beats_random_feasible_points(self, seed):
        """The returned minimiser is no worse than random feasible probes."""
        rng = np.random.default_rng(seed)
        n = 4
        A = rng.normal(size=(n, n))
        B = A @ A.T + 0.5 * np.eye(n)
        g = rng.normal(size=n)
        lo = -rng.random(n)
        hi = rng.random(n)
        res = solve_box_qp(B, g, lo, hi)
        assert np.all(res.x >= lo - 1e-10) and np.all(res.x <= hi + 1e-10)
        for _ in range(30):
            z = lo + rng.random(n) * (hi - lo)
            val = 0.5 * z @ B @ z + g @ z
            assert res.value <= val + 1e-8


class TestProjectedArmijo:
    @staticmethod
    def quad(x):
        return float(np.sum((x - 1.0) ** 2))

    def test_accepts_descent_step(self):
        x = np.zeros(2)
        g = 2 * (x - 1.0)
        x_new, f_new, alpha, evals = projected_armijo(
            self.quad, x, -g, self.quad(x), g,
            np.full(2, -5.0), np.full(2, 5.0),
        )
        assert f_new < self.quad(x)
        assert alpha > 0
        assert evals >= 1

    def test_projection_respected(self):
        x = np.zeros(2)
        g = np.array([-10.0, -10.0])  # direction +10 toward bound at 0.5
        x_new, _, _, _ = projected_armijo(
            self.quad, x, -g, self.quad(x), g,
            np.full(2, 0.0), np.full(2, 0.5),
        )
        assert np.all(x_new <= 0.5 + 1e-12)

    def test_no_movement_returns_origin(self):
        x = np.ones(2)  # already the minimiser
        g = np.zeros(2)
        x_new, f_new, alpha, _ = projected_armijo(
            self.quad, x, np.zeros(2), self.quad(x), g,
            np.full(2, -5.0), np.full(2, 5.0),
        )
        np.testing.assert_allclose(x_new, x)
        assert alpha == 0.0

    def test_bad_shrink_rejected(self):
        with pytest.raises(ValueError):
            projected_armijo(self.quad, np.zeros(1), np.ones(1), 0.0,
                             np.zeros(1), np.zeros(1), np.ones(1), shrink=1.5)
