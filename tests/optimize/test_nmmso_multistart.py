"""Tests for the NMMSO multi-modal optimiser and multi-start helpers."""

import numpy as np
import pytest

from repro.optimize import (
    Nmmso,
    SqpOptimizer,
    best_result,
    random_starting_points,
    refine_starting_points,
)


def two_peaks(x):
    """1-D bimodal: peaks near 0.2 (h=1.0) and 0.8 (h=0.7)."""
    x = float(np.ravel(x)[0])
    return (
        1.0 * np.exp(-((x - 0.2) ** 2) / 0.006)
        + 0.7 * np.exp(-((x - 0.8) ** 2) / 0.006)
    )


def four_peaks_2d(x):
    x = np.ravel(x)
    centers = [(0.2, 0.2), (0.2, 0.8), (0.8, 0.2), (0.8, 0.8)]
    heights = [1.0, 0.9, 0.8, 0.7]
    return sum(
        h * np.exp(-((x[0] - cx) ** 2 + (x[1] - cy) ** 2) / 0.01)
        for (cx, cy), h in zip(centers, heights)
    )


class TestNmmso:
    def test_finds_global_peak_1d(self):
        opt = Nmmso(two_peaks, np.zeros(1), np.ones(1),
                    max_evaluations=800, seed=0)
        res = opt.run()
        assert res.best.value == pytest.approx(1.0, abs=0.05)
        assert abs(float(res.best.x[0]) - 0.2) < 0.05

    def test_finds_both_peaks_1d(self):
        opt = Nmmso(two_peaks, np.zeros(1), np.ones(1),
                    max_evaluations=1500, merge_distance=0.08, seed=1)
        res = opt.run()
        xs = [float(o.x[0]) for o in res.optima if o.value > 0.3]
        assert any(abs(x - 0.2) < 0.08 for x in xs)
        assert any(abs(x - 0.8) < 0.08 for x in xs)

    def test_finds_multiple_peaks_2d(self):
        opt = Nmmso(four_peaks_2d, np.zeros(2), np.ones(2),
                    max_evaluations=4000, merge_distance=0.1, seed=2)
        res = opt.run()
        found = 0
        for cx, cy in [(0.2, 0.2), (0.2, 0.8), (0.8, 0.2), (0.8, 0.8)]:
            if any(
                np.hypot(float(o.x[0]) - cx, float(o.x[1]) - cy) < 0.12
                and o.value > 0.3
                for o in res.optima
            ):
                found += 1
        assert found >= 3

    def test_respects_budget(self):
        opt = Nmmso(two_peaks, np.zeros(1), np.ones(1), max_evaluations=100)
        res = opt.run()
        assert res.evaluations <= 101  # one-off slack for the merge probe

    def test_optima_sorted_descending(self):
        opt = Nmmso(two_peaks, np.zeros(1), np.ones(1), max_evaluations=500)
        res = opt.run()
        values = [o.value for o in res.optima]
        assert values == sorted(values, reverse=True)

    def test_degenerate_dimensions_pinned(self):
        lo = np.array([0.0, 0.5])
        hi = np.array([1.0, 0.5])
        opt = Nmmso(lambda x: two_peaks(x[:1]), lo, hi, max_evaluations=300)
        res = opt.run()
        for o in res.optima:
            assert o.x[1] == pytest.approx(0.5)

    def test_deterministic_for_seed(self):
        r1 = Nmmso(two_peaks, np.zeros(1), np.ones(1),
                   max_evaluations=300, seed=7).run()
        r2 = Nmmso(two_peaks, np.zeros(1), np.ones(1),
                   max_evaluations=300, seed=7).run()
        assert r1.best.value == r2.best.value
        np.testing.assert_allclose(r1.best.x, r2.best.x)

    def test_validation(self):
        with pytest.raises(ValueError):
            Nmmso(two_peaks, np.ones(1), np.zeros(1))
        with pytest.raises(ValueError):
            Nmmso(two_peaks, np.zeros(1), np.ones(1), max_evaluations=0)
        with pytest.raises(ValueError):
            Nmmso(two_peaks, np.zeros(2), np.ones(3))
        with pytest.raises(ValueError):
            Nmmso(two_peaks, np.ones(2), np.ones(2))  # fully degenerate


class TestMultistart:
    def test_random_points_feasible(self):
        lo = np.zeros((2, 3))
        hi = np.full((2, 3), 5.0)
        pts = random_starting_points(lo, hi, 10, seed=0)
        assert len(pts) == 10
        for p in pts:
            assert p.shape == (2, 3)
            assert np.all(p >= lo) and np.all(p <= hi)

    def test_count_positive(self):
        with pytest.raises(ValueError):
            random_starting_points(np.zeros(1), np.ones(1), 0)

    def test_refine_and_best(self):
        def fun(x):
            return two_peaks(x), np.array(
                [(two_peaks(x + 1e-6) - two_peaks(x - 1e-6)) / 2e-6]
            )

        starts = [np.array([0.1]), np.array([0.9])]
        results = refine_starting_points(
            fun, starts, np.zeros(1), np.ones(1),
            optimizer=SqpOptimizer(max_iter=50, tol=1e-8),
        )
        assert len(results) == 2
        # Each start converges to its own basin.
        assert abs(float(results[0].x[0]) - 0.2) < 0.02
        assert abs(float(results[1].x[0]) - 0.8) < 0.02
        best = best_result(results)
        assert best is results[0]

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            refine_starting_points(lambda x: (0.0, x), [], np.zeros(1), np.ones(1))
        with pytest.raises(ValueError):
            best_result([])
