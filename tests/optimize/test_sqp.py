"""Tests for the box-constrained SQP maximiser (both Hessian modes)."""

import numpy as np
import pytest

from repro.optimize import SqpOptimizer, projected_gradient_norm


def neg_quadratic(center):
    """Concave bowl with maximum at ``center``."""
    center = np.asarray(center, dtype=float)

    def fun(x):
        d = x - center
        return float(-np.sum(d * d)), -2 * d

    return fun


def neg_rosenbrock(x):
    a, b = x[0], x[1]
    value = -((1 - a) ** 2 + 100.0 * (b - a**2) ** 2)
    grad = np.array([
        2 * (1 - a) + 400.0 * a * (b - a**2),
        -200.0 * (b - a**2),
    ])
    return float(value), grad


@pytest.mark.parametrize("hessian", ["lbfgs", "dense"])
class TestBothModes:
    def test_interior_maximum(self, hessian):
        opt = SqpOptimizer(hessian=hessian, tol=1e-8, max_iter=100)
        res = opt.maximize(neg_quadratic([0.3, -0.2]), np.zeros(2),
                           np.full(2, -1.0), np.full(2, 1.0))
        assert res.converged
        np.testing.assert_allclose(res.x, [0.3, -0.2], atol=1e-6)

    def test_maximum_on_boundary(self, hessian):
        opt = SqpOptimizer(hessian=hessian, tol=1e-8, max_iter=100)
        res = opt.maximize(neg_quadratic([2.0, 0.0]), np.zeros(2),
                           np.full(2, -1.0), np.full(2, 1.0))
        np.testing.assert_allclose(res.x, [1.0, 0.0], atol=1e-6)

    def test_rosenbrock(self, hessian):
        opt = SqpOptimizer(hessian=hessian, tol=1e-6, max_iter=400)
        res = opt.maximize(neg_rosenbrock, np.array([-0.5, 0.5]),
                           np.full(2, -2.0), np.full(2, 2.0))
        np.testing.assert_allclose(res.x, [1.0, 1.0], atol=1e-3)

    def test_history_monotone_nondecreasing(self, hessian):
        opt = SqpOptimizer(hessian=hessian, max_iter=50)
        res = opt.maximize(neg_rosenbrock, np.array([-1.0, -1.0]),
                           np.full(2, -2.0), np.full(2, 2.0))
        diffs = np.diff(res.history)
        assert np.all(diffs >= -1e-12)

    def test_start_outside_box_clipped(self, hessian):
        opt = SqpOptimizer(hessian=hessian)
        res = opt.maximize(neg_quadratic([0.0, 0.0]), np.array([10.0, -10.0]),
                           np.full(2, -1.0), np.full(2, 1.0))
        assert np.all(res.x >= -1.0) and np.all(res.x <= 1.0)

    def test_shaped_input_preserved(self, hessian):
        center = np.arange(6.0).reshape(2, 3) / 10.0

        def fun(x):
            d = x - center
            return float(-np.sum(d * d)), -2 * d

        opt = SqpOptimizer(hessian=hessian, tol=1e-8)
        res = opt.maximize(fun, np.zeros((2, 3)), np.zeros((2, 3)),
                           np.ones((2, 3)))
        assert res.x.shape == (2, 3)
        np.testing.assert_allclose(res.x, center, atol=1e-5)


class TestScalableMode:
    def test_high_dimensional(self):
        n = 500
        rng = np.random.default_rng(0)
        center = rng.random(n)
        opt = SqpOptimizer(hessian="lbfgs", tol=1e-8, max_iter=200)
        res = opt.maximize(neg_quadratic(center), np.zeros(n),
                           np.zeros(n), np.ones(n))
        np.testing.assert_allclose(res.x, center, atol=1e-5)

    def test_evaluation_count_tracked(self):
        opt = SqpOptimizer(max_iter=10)
        res = opt.maximize(neg_quadratic([0.5]), np.zeros(1),
                           np.zeros(1), np.ones(1))
        assert res.evaluations >= res.iterations

    def test_degenerate_dimension_fixed(self):
        """A window with zero slack (lower == upper) must stay pinned."""
        fun = neg_quadratic([0.5, 0.9])
        opt = SqpOptimizer(tol=1e-10)
        lo = np.array([0.0, 0.3])
        hi = np.array([1.0, 0.3])
        res = opt.maximize(fun, np.array([0.0, 0.3]), lo, hi)
        assert res.x[1] == pytest.approx(0.3)
        assert res.x[0] == pytest.approx(0.5, abs=1e-6)


class TestValidation:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            SqpOptimizer(hessian="newton")

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            SqpOptimizer(max_iter=0)

    def test_infeasible_box(self):
        opt = SqpOptimizer()
        with pytest.raises(ValueError):
            opt.maximize(neg_quadratic([0.0]), np.zeros(1),
                         np.ones(1), np.zeros(1))

    def test_projected_gradient_norm(self):
        x = np.array([0.0, 0.5, 1.0])
        g = np.array([-1.0, 0.2, 1.0])  # ascent gradient
        lo, hi = np.zeros(3), np.ones(3)
        # x0 at lower bound with negative gradient: projected step 0.
        # x2 at upper bound with positive gradient: projected step 0.
        assert projected_gradient_norm(x, g, lo, hi) == pytest.approx(0.2)
        assert projected_gradient_norm(x, np.zeros(3), lo, hi) == 0.0
