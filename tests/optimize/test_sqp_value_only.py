"""Tests for the SQP value-only line-search oracle (fun_value)."""

import numpy as np
import pytest

from repro.optimize import SqpOptimizer


class CountingOracle:
    """Concave quadratic with separate gradient/value call counters."""

    def __init__(self, center):
        self.center = np.asarray(center, dtype=float)
        self.grad_calls = 0
        self.value_calls = 0

    def value_and_grad(self, x):
        self.grad_calls += 1
        d = x - self.center
        return float(-np.sum(d * d)), -2 * d

    def value(self, x):
        self.value_calls += 1
        d = x - self.center
        return float(-np.sum(d * d))


class TestFunValue:
    def test_line_search_uses_cheap_oracle(self):
        oracle = CountingOracle([0.4, 0.6])
        opt = SqpOptimizer(max_iter=50, tol=1e-10)
        res = opt.maximize(oracle.value_and_grad, np.zeros(2),
                           np.zeros(2), np.ones(2),
                           fun_value=oracle.value)
        np.testing.assert_allclose(res.x, [0.4, 0.6], atol=1e-6)
        assert oracle.value_calls > 0
        # The expensive oracle is called once per accepted iterate only.
        assert oracle.grad_calls <= res.iterations + 1

    def test_same_answer_with_and_without(self):
        a = CountingOracle([0.3, 0.7])
        b = CountingOracle([0.3, 0.7])
        opt = SqpOptimizer(max_iter=60, tol=1e-10)
        res_a = opt.maximize(a.value_and_grad, np.zeros(2), np.zeros(2),
                             np.ones(2))
        res_b = opt.maximize(b.value_and_grad, np.zeros(2), np.zeros(2),
                             np.ones(2), fun_value=b.value)
        np.testing.assert_allclose(res_a.x, res_b.x, atol=1e-8)

    def test_evaluations_counter_includes_both(self):
        oracle = CountingOracle([0.5])
        opt = SqpOptimizer(max_iter=20, tol=1e-10)
        res = opt.maximize(oracle.value_and_grad, np.zeros(1), np.zeros(1),
                           np.ones(1), fun_value=oracle.value)
        assert res.evaluations == oracle.grad_calls + oracle.value_calls


class TestFirstStepScaling:
    @pytest.mark.parametrize("scale", [1e-7, 1.0, 1e5])
    def test_converges_regardless_of_gradient_scale(self, scale):
        """Score-style objectives have arbitrary gradient magnitudes; the
        first trial displacement must be span-relative, not |g|-relative."""
        center = np.array([0.25, 0.75])

        def fun(x):
            d = x - center
            return float(-scale * np.sum(d * d)), -2 * scale * d

        opt = SqpOptimizer(max_iter=120, tol=1e-12 * scale)
        res = opt.maximize(fun, np.zeros(2), np.zeros(2), np.ones(2))
        np.testing.assert_allclose(res.x, center, atol=1e-4)
