"""Tests for dynamic micro-batching of surrogate evaluations.

The fidelity contract under test (DESIGN.md "Serving"):

* a coalesced group of K requests returns **bitwise** what
  ``evaluate_batch`` returns for those K fills stacked;
* a singleton flush is bitwise-identical to sequential ``evaluate``;
* for K > 1 the repo-wide batched contract applies (≤ 1e-10 vs
  sequential, BLAS contraction order at the last ulp).
"""

import threading
import time

import numpy as np
import pytest

from repro.serve import CoalescedNetwork, MicroBatcher, ServeStats
from repro.surrogate import PlanarityWeights

WEIGHTS = PlanarityWeights(0.2, 1e4, 0.2, 1e5, 0.15, 100.0)


def concurrent_evaluate(batcher, fills, weights=WEIGHTS):
    """Submit fills from one thread each; return results in input order."""
    results = [None] * len(fills)
    errors = []

    def worker(k):
        try:
            results[k] = batcher.evaluate(fills[k], weights)
        except BaseException as exc:  # surfaced by the caller
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(k,))
               for k in range(len(fills))]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    if errors:
        raise errors[0]
    return results


@pytest.fixture()
def fills(small_layout):
    rng = np.random.default_rng(7)
    slack = small_layout.slack_stack()
    return [rng.uniform(0.1, 0.9) * slack for _ in range(3)]


class TestFidelity:
    def test_coalesced_bitwise_equals_evaluate_batch(self, trained_surrogate,
                                                     fills):
        """Coalescing adds no arithmetic: the scattered per-request results
        are exactly the rows of one ``evaluate_batch`` stacked pass."""
        batcher = MicroBatcher(trained_surrogate, max_batch=len(fills),
                               max_delay_s=30.0)
        try:
            got = concurrent_evaluate(batcher, fills)
        finally:
            batcher.close()
        reference = trained_surrogate.evaluate_batch(np.stack(fills), WEIGHTS)
        for k, ev in enumerate(got):
            assert ev.s_plan == float(reference.s_plan[k])
            assert np.array_equal(ev.heights, reference.heights[k])
            assert np.array_equal(ev.gradient, reference.gradient[k])

    def test_singleton_flush_bitwise_equals_sequential(self, trained_surrogate,
                                                       fills):
        """A max-latency flush of one request runs the identical stacked
        shape, hence bitwise-equal to the plain ``evaluate`` path."""
        batcher = MicroBatcher(trained_surrogate, max_batch=16,
                               max_delay_s=0.005)
        try:
            got = batcher.evaluate(fills[0], WEIGHTS)
        finally:
            batcher.close()
        reference = trained_surrogate.evaluate(fills[0], WEIGHTS)
        assert got.s_plan == reference.s_plan
        assert np.array_equal(got.heights, reference.heights)
        assert np.array_equal(got.gradient, reference.gradient)

    def test_group_close_to_sequential(self, trained_surrogate, fills):
        """K > 1 inherits the repo-wide batched contract vs sequential."""
        batcher = MicroBatcher(trained_surrogate, max_batch=len(fills),
                               max_delay_s=30.0)
        try:
            got = concurrent_evaluate(batcher, fills)
        finally:
            batcher.close()
        for fill, ev in zip(fills, got):
            reference = trained_surrogate.evaluate(fill, WEIGHTS)
            assert ev.s_plan == pytest.approx(reference.s_plan, abs=1e-10)
            np.testing.assert_allclose(ev.gradient, reference.gradient,
                                       atol=1e-10)

    def test_passthrough_when_disabled(self, trained_surrogate, fills):
        """max_batch=1 short-circuits to the plain sequential path."""
        batcher = MicroBatcher(trained_surrogate, max_batch=1)
        got = batcher.evaluate(fills[0], WEIGHTS)
        reference = trained_surrogate.evaluate(fills[0], WEIGHTS)
        assert got.s_plan == reference.s_plan
        assert np.array_equal(got.gradient, reference.gradient)
        batcher.close()


class TestBehaviour:
    def test_batch_histogram_recorded(self, trained_surrogate, fills):
        stats = ServeStats()
        batcher = MicroBatcher(trained_surrogate, max_batch=len(fills),
                               max_delay_s=30.0, stats=stats)
        try:
            concurrent_evaluate(batcher, fills)
        finally:
            batcher.close()
        histogram = stats.snapshot()["batch_histogram"]
        assert histogram.get(str(len(fills))) == 1

    def test_different_weights_never_coalesce(self, trained_surrogate, fills):
        """Requests only share a group when the planarity weights match."""
        stats = ServeStats()
        other = PlanarityWeights(0.3, 1e4, 0.2, 1e5, 0.15, 100.0)
        batcher = MicroBatcher(trained_surrogate, max_batch=2,
                               max_delay_s=0.05, stats=stats)
        try:
            results = [None, None]

            def run(k, weights):
                results[k] = batcher.evaluate(fills[k], weights)

            threads = [threading.Thread(target=run, args=(0, WEIGHTS)),
                       threading.Thread(target=run, args=(1, other))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        finally:
            batcher.close()
        histogram = batcher.stats.snapshot()["batch_histogram"]
        assert histogram == {"1": 2}
        assert results[0].s_plan != results[1].s_plan

    def test_close_drains_parked_requests(self, trained_surrogate, fills):
        """close() flushes waiters instead of stranding them."""
        batcher = MicroBatcher(trained_surrogate, max_batch=64,
                               max_delay_s=300.0)
        holder = {}
        thread = threading.Thread(
            target=lambda: holder.setdefault(
                "ev", batcher.evaluate(fills[0], WEIGHTS)))
        thread.start()
        while not batcher._pending:  # wait until parked
            time.sleep(0.001)
        batcher.close()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert holder["ev"].s_plan == trained_surrogate.evaluate(
            fills[0], WEIGHTS).s_plan

    def test_evaluate_after_close_still_works(self, trained_surrogate, fills):
        batcher = MicroBatcher(trained_surrogate, max_batch=4,
                               max_delay_s=0.01)
        batcher.close()
        ev = batcher.evaluate(fills[0], WEIGHTS)
        assert ev.s_plan == trained_surrogate.evaluate(fills[0],
                                                       WEIGHTS).s_plan

    def test_errors_propagate_to_every_waiter(self, fills):
        class ExplodingNetwork:
            def evaluate_batch(self, fills, weights, grad_mask=None):
                raise RuntimeError("boom")

        batcher = MicroBatcher(ExplodingNetwork(), max_batch=len(fills),
                               max_delay_s=30.0)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                concurrent_evaluate(batcher, fills)
        finally:
            batcher.close()

    def test_bad_config_rejected(self, trained_surrogate):
        with pytest.raises(ValueError):
            MicroBatcher(trained_surrogate, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(trained_surrogate, max_delay_s=-1.0)


class TestCoalescedNetwork:
    def test_delegates_everything_else(self, trained_surrogate, small_layout):
        batcher = MicroBatcher(trained_surrogate, max_batch=1)
        facade = CoalescedNetwork(trained_surrogate, batcher)
        assert facade.layout is trained_surrogate.layout
        heights = facade.predict_heights()
        np.testing.assert_array_equal(
            heights, trained_surrogate.predict_heights())
        batcher.close()

    def test_evaluate_routes_through_batcher(self, trained_surrogate, fills):
        batcher = MicroBatcher(trained_surrogate, max_batch=16,
                               max_delay_s=0.003)
        facade = CoalescedNetwork(trained_surrogate, batcher)
        ev = facade.evaluate(fills[0], WEIGHTS)
        reference = trained_surrogate.evaluate(fills[0], WEIGHTS)
        assert ev.s_plan == reference.s_plan
        batcher.close()
