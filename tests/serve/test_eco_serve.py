"""Serving incremental (ECO) jobs: validation, routing affinity, parity.

Covers the PR's serve-layer pieces:

* ``validate_job`` admission checks for the ``eco`` op;
* ``routing_key``'s parent-fingerprint branch — an edited layout hashes
  differently from its parent, so content routing would strand the edit
  on a cold shard (the satellite bugfix);
* the router's learned fingerprint->shard affinity, exercised without
  spawning processes;
* executor-level fill -> eco chaining: the cached-parent path and the
  explicit ``parent_fill`` path must produce bitwise-identical fills,
  and the served result must match a direct in-process ``eco_refill``
  with the serve optimizer settings (the CLI parity guarantee);
* a forked two-shard fleet end-to-end: the eco job must land on the
  shard holding the parent's cached solution.
"""

import multiprocessing

import numpy as np
import pytest

from repro.cmp import CmpSimulator
from repro.core import FillProblem, ScoreCoefficients, eco_refill
from repro.layout import edit_layout, save_layout
from repro.layout.designs import DESIGN_BUILDERS
from repro.nn import UNet
from repro.optimize import SqpOptimizer
from repro.serve import (
    ModelRegistry,
    ServeConfig,
    ShardRouter,
    rendezvous_shard,
    routing_key,
)
from repro.serve.executor import JobExecutor, validate_job
from repro.serve.protocol import Request
from repro.serve.router import _Entry
from repro.surrogate import (
    NUM_FEATURE_CHANNELS,
    HeightNormalizer,
    load_surrogate,
    save_surrogate,
)

from .test_server import Collector, submit


@pytest.fixture(scope="module")
def parent_layout():
    return DESIGN_BUILDERS["A"](rows=8, cols=8, seed=3)


@pytest.fixture(scope="module")
def edited_layout(parent_layout):
    return edit_layout(parent_layout, 1, slice(2, 4), slice(2, 4))


@pytest.fixture(scope="module")
def layout_files(parent_layout, edited_layout, tmp_path_factory):
    root = tmp_path_factory.mktemp("eco-serve")
    parent = root / "a.json"
    edited = root / "a_eco.json"
    save_layout(parent_layout, str(parent))
    save_layout(edited_layout, str(edited))
    return str(parent), str(edited)


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    unet = UNet(NUM_FEATURE_CHANNELS, 1, base_channels=4, depth=2, rng=0)
    directory = tmp_path_factory.mktemp("eco-serve-ckpt") / "ckpt"
    return str(save_surrogate(directory, unet, HeightNormalizer(2500.0, 300.0),
                              base_channels=4, depth=2))


def eco_request(params, rid="e1"):
    return Request(id=rid, op="eco", params=params)


class TestValidateJob:
    def test_needs_some_parent(self):
        error = validate_job(eco_request({"layout_path": "a.json"}))
        assert "parent_fingerprint" in error

    def test_explicit_fill_needs_parent_layout(self):
        error = validate_job(eco_request(
            {"layout_path": "a.json", "parent_fill": [[[0.0]]]}))
        assert "parent_layout" in error

    def test_fingerprint_alone_is_enough(self):
        assert validate_job(eco_request(
            {"layout_path": "a.json", "parent_fingerprint": "abc"})) is None

    def test_fill_plus_layout_is_enough(self):
        assert validate_job(eco_request(
            {"layout_path": "a.json", "parent_fill": [[[0.0]]],
             "parent_layout_path": "parent.json"})) is None

    def test_needs_model_when_training_disabled(self):
        error = validate_job(eco_request(
            {"layout_path": "a.json", "parent_fingerprint": "abc"}),
            allow_train=False)
        assert "model" in error


class TestRoutingKey:
    def test_parent_fingerprint_wins_over_layout(self):
        key = routing_key({"layout_path": "edited.json",
                           "parent_fingerprint": "abc123"})
        assert key == "fingerprint:abc123"

    def test_edited_inline_layout_routes_with_its_parent(
            self, parent_layout, edited_layout):
        from repro.layout import layout_to_dict

        fingerprint = "deadbeef"
        parent_key = routing_key(
            {"layout": layout_to_dict(parent_layout),
             "parent_fingerprint": fingerprint})
        edited_key = routing_key(
            {"layout": layout_to_dict(edited_layout),
             "parent_fingerprint": fingerprint})
        assert parent_key == edited_key == f"fingerprint:{fingerprint}"
        # Without the fingerprint the two layouts hash apart — the bug
        # this branch fixes.
        assert routing_key({"layout": layout_to_dict(parent_layout)}) \
            != routing_key({"layout": layout_to_dict(edited_layout)})


class TestRouterAffinity:
    """Learned fingerprint->shard affinity, no processes spawned."""

    def make_router(self):
        return ShardRouter(serve_config=ServeConfig(
            workers=1, queue_capacity=4, max_batch=1, shards=4))

    def complete_fill_on(self, router, shard, fingerprint, rid):
        router._entries[rid] = _Entry(line="", reply=lambda m: None,
                                      shard=shard, is_job=True, acked=True)
        router._outstanding[shard] += 1
        router._on_shard_message(shard, {
            "id": rid, "ok": True, "status": "done",
            "result": {"layout_fingerprint": fingerprint}})

    def test_eco_follows_the_shard_that_solved_the_parent(self):
        router = self.make_router()
        # Pick a shard the rendezvous fallback would NOT pick, so a pass
        # can only come from the learned table.
        fallback = rendezvous_shard("fingerprint:fp-1", 4)
        owner = (fallback + 1) % 4
        self.complete_fill_on(router, owner, "fp-1", "j1")
        request = eco_request({"layout_path": "a_eco.json",
                               "parent_fingerprint": "fp-1"})
        assert router._shard_for(request) == owner

    def test_unknown_fingerprint_falls_back_to_rendezvous(self):
        router = self.make_router()
        request = eco_request({"layout_path": "a_eco.json",
                               "parent_fingerprint": "never-seen"})
        assert router._shard_for(request) == rendezvous_shard(
            "fingerprint:never-seen", 4)

    def test_latest_solve_wins(self):
        router = self.make_router()
        self.complete_fill_on(router, 1, "fp-2", "j1")
        self.complete_fill_on(router, 3, "fp-2", "j2")
        request = eco_request({"layout_path": "a_eco.json",
                               "parent_fingerprint": "fp-2"})
        assert router._shard_for(request) == 3

    def test_non_eco_jobs_ignore_the_table(self):
        router = self.make_router()
        self.complete_fill_on(router, 2, "fp-3", "j1")
        request = Request(id="f1", op="fill",
                          params={"layout_path": "a.json"})
        assert router._shard_for(request) == rendezvous_shard(
            routing_key(request.params), 4)


class TestExecutorEcoJobs:
    @pytest.fixture()
    def executor(self, checkpoint):
        registry = ModelRegistry()
        registry.register("m", checkpoint)
        executor = JobExecutor(registry=registry, allow_train=False)
        yield executor
        executor.close()

    def run_fill(self, executor, layout_path):
        return executor.execute(Request(
            id="f1", op="fill",
            params={"layout_path": layout_path, "method": "neurfill-pkb",
                    "model": "m", "return_fill": True}))

    def test_fill_payload_carries_fingerprint(self, executor, layout_files):
        payload = self.run_fill(executor, layout_files[0])
        assert isinstance(payload.get("layout_fingerprint"), str)
        assert executor.solution_for(payload["layout_fingerprint"]) is not None

    def test_cached_and_explicit_parents_agree_bitwise(
            self, executor, layout_files):
        parent_path, edited_path = layout_files
        fill_payload = self.run_fill(executor, parent_path)
        fingerprint = fill_payload["layout_fingerprint"]

        cached = executor.execute(Request(
            id="e1", op="eco",
            params={"layout_path": edited_path, "model": "m",
                    "parent_fingerprint": fingerprint, "return_fill": True}))
        explicit = executor.execute(Request(
            id="e2", op="eco",
            params={"layout_path": edited_path, "model": "m",
                    "parent_fill": fill_payload["fill"],
                    "parent_layout_path": parent_path,
                    "return_fill": True}))
        assert cached["method"] == "neurfill-eco"
        assert not cached["eco"]["cache_hit"]
        assert cached["eco"]["dirty_windows"] == 4
        np.testing.assert_array_equal(np.asarray(cached["fill"]),
                                      np.asarray(explicit["fill"]))

    def test_served_eco_matches_direct_eco_refill(
            self, executor, layout_files, checkpoint,
            parent_layout, edited_layout):
        parent_path, edited_path = layout_files
        fill_payload = self.run_fill(executor, parent_path)
        served = executor.execute(Request(
            id="e1", op="eco",
            params={"layout_path": edited_path, "model": "m",
                    "parent_fingerprint": fill_payload["layout_fingerprint"],
                    "return_fill": True}))

        # One-shot equivalent: same checkpoint, same calibrated
        # coefficients, same optimizer budget as the executor.
        coefficients = ScoreCoefficients.calibrated(
            edited_layout, CmpSimulator(), beta_runtime=60.0)
        problem = FillProblem(edited_layout, coefficients)
        network = load_surrogate(checkpoint, edited_layout)
        direct = eco_refill(
            problem, network, parent_layout,
            np.asarray(fill_payload["fill"], dtype=float),
            optimizer=SqpOptimizer(max_iter=80, tol=1e-9))
        np.testing.assert_array_equal(np.asarray(served["fill"]),
                                      direct.fill)
        assert served["quality"] == pytest.approx(direct.quality, abs=1e-12)

    def test_eco_result_is_cached_for_chained_edits(
            self, executor, layout_files, parent_layout, edited_layout):
        parent_path, edited_path = layout_files
        self.run_fill(executor, parent_path)
        first = executor.execute(Request(
            id="e1", op="eco",
            params={"layout_path": edited_path, "model": "m",
                    "parent_fingerprint": layout_fingerprint_of(
                        executor, parent_path)}))
        # Chain a second edit off the first eco's own fingerprint.
        second_layout = edit_layout(edited_layout, 0, slice(5, 6),
                                    slice(5, 6), name_suffix="-eco2")
        from repro.layout import layout_to_dict

        second = executor.execute(Request(
            id="e2", op="eco",
            params={"layout": layout_to_dict(second_layout), "model": "m",
                    "parent_fingerprint": first["layout_fingerprint"]}))
        assert second["method"] == "neurfill-eco"
        assert second["eco"]["dirty_windows"] == 1

    def test_missing_parent_raises_clear_error(self, executor, layout_files):
        with pytest.raises(ValueError, match="not cached on this worker"):
            executor.execute(Request(
                id="e1", op="eco",
                params={"layout_path": layout_files[1], "model": "m",
                        "parent_fingerprint": "no-such-parent"}))


def layout_fingerprint_of(executor, path):
    layout, fingerprint = executor._load_layout({"layout_path": path})
    return fingerprint


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shard router tests need the fork start method")
class TestShardedEco:
    def test_eco_lands_on_the_parent_shard(self, layout_files, checkpoint):
        parent_path, edited_path = layout_files
        router = ShardRouter(
            serve_config=ServeConfig(workers=1, queue_capacity=8,
                                     max_batch=1, shards=2),
            model_specs=[("m", checkpoint)])
        router.start()
        try:
            collector = Collector()
            submit(router, collector, "f1", params={
                "layout_path": parent_path, "method": "neurfill-pkb",
                "model": "m", "return_fill": True})
            done = collector.wait_for("f1", "done")
            fingerprint = done["result"]["layout_fingerprint"]
            assert router._affinity[fingerprint] in (0, 1)

            # The parent solution lives only in one shard's executor; a
            # mis-routed eco would fail with "not cached on this worker".
            submit(router, collector, "e1", op="eco", params={
                "layout_path": edited_path, "model": "m",
                "parent_fingerprint": fingerprint, "return_fill": True})
            eco_done = collector.wait_for("e1", "done")
            result = eco_done["result"]
            assert result["method"] == "neurfill-eco"
            assert result["eco"]["dirty_windows"] == 4
            fill = np.asarray(result["fill"], dtype=float)
            parent_fill = np.asarray(done["result"]["fill"], dtype=float)
            assert fill.shape == parent_fill.shape
        finally:
            router.shutdown(timeout=30.0)
