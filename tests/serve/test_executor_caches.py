"""LRU behaviour of the :class:`JobExecutor` per-executor caches.

The PR 3 server evicted its layout and coefficient caches FIFO — a hot
layout hammered by every request could be evicted while cold one-off
layouts survived.  The executor's caches are true LRUs now: a hit
refreshes recency, eviction removes the least-recently-*used* entry,
matching the ``ModelRegistry`` bound-network cache.
"""

import numpy as np
import pytest

from repro.core import ScoreCoefficients
from repro.layout import save_layout
from repro.layout.designs import DESIGN_BUILDERS
from repro.serve import JobExecutor


@pytest.fixture()
def layout_files(tmp_path):
    paths = []
    for k in range(5):
        path = tmp_path / f"l{k}.json"
        save_layout(DESIGN_BUILDERS["A"](rows=8, cols=8, seed=k), str(path))
        paths.append(str(path))
    return paths


class TestLayoutCacheLru:
    def test_hit_refreshes_recency(self, layout_files):
        # max_bound_networks=1 -> layout cache capacity 4.
        executor = JobExecutor(max_bound_networks=1)
        for path in layout_files[:4]:
            executor._load_layout({"layout_path": path})
        assert list(executor._layout_cache) == layout_files[:4]

        # Touch the oldest entry: under FIFO it would still be evicted
        # next; under LRU the hit moves it to the young end.
        executor._load_layout({"layout_path": layout_files[0]})
        executor._load_layout({"layout_path": layout_files[4]})

        assert layout_files[0] in executor._layout_cache
        assert layout_files[1] not in executor._layout_cache  # true LRU victim
        assert len(executor._layout_cache) == 4

    def test_mtime_change_invalidates(self, layout_files):
        executor = JobExecutor(max_bound_networks=1)
        first, _ = executor._load_layout({"layout_path": layout_files[0]})
        # Rewrite the file with different content; the stamp check must
        # reload rather than serve the stale cached layout.
        save_layout(DESIGN_BUILDERS["A"](rows=8, cols=8, seed=99),
                    layout_files[0])
        import os
        os.utime(layout_files[0], ns=(1, 1))  # force a distinct mtime_ns
        second, _ = executor._load_layout({"layout_path": layout_files[0]})
        assert not np.array_equal(first.density_stack(),
                                  second.density_stack())


class TestCoefficientCacheLru:
    def test_hit_refreshes_recency_and_skips_recalibration(
            self, layout_files, monkeypatch):
        executor = JobExecutor(max_bound_networks=1)  # coeff capacity 8
        layout, _ = executor._load_layout({"layout_path": layout_files[0]})

        calls = []
        orig = ScoreCoefficients.calibrated.__func__

        def counting(cls, *args, **kwargs):
            calls.append(1)
            return orig(cls, *args, **kwargs)

        monkeypatch.setattr(ScoreCoefficients, "calibrated",
                            classmethod(counting))

        # Fill the cache with 8 distinct fingerprints.
        for k in range(8):
            executor._coefficients(layout, f"f{k}")
        assert len(calls) == 8

        executor._coefficients(layout, "f0")  # hit: refresh, no recalibration
        assert len(calls) == 8

        executor._coefficients(layout, "f8")  # evicts f1 (LRU), not f0
        assert len(calls) == 9
        assert "f0" in executor._coeff_cache
        assert "f1" not in executor._coeff_cache

        executor._coefficients(layout, "f0")  # still warm
        assert len(calls) == 9
        executor._coefficients(layout, "f1")  # evicted -> recalibrates
        assert len(calls) == 10
