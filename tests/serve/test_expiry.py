"""Deadline expiry must not wait for a free worker.

PR 3 expired due jobs only at the top of each worker loop iteration, so
with every worker pinned under a long fill, a queued job whose deadline
passed sat unanswered until some worker finished.  The server now runs a
dedicated expiry timer: due jobs get their ``timeout`` response promptly
even while all workers are busy.
"""

import time

import pytest

from repro.layout import save_layout
from repro.layout.designs import DESIGN_BUILDERS
from repro.serve import FillServer, ServeConfig

from .test_server import BlockingExecute, Collector, submit


@pytest.fixture()
def layout_file(tmp_path):
    path = tmp_path / "a.json"
    save_layout(DESIGN_BUILDERS["A"](rows=8, cols=8, seed=3), str(path))
    return str(path)


def test_due_job_times_out_while_all_workers_busy(layout_file):
    server = FillServer(serve_config=ServeConfig(
        workers=1, queue_capacity=4, max_batch=1))
    blocker = BlockingExecute(server)
    server.start()
    try:
        collector = Collector()
        params = {"layout_path": layout_file, "method": "lin",
                  "score": False}
        submit(server, collector, "running", params=params)
        assert blocker.entered.wait(timeout=10.0)  # the only worker is busy

        submit(server, collector, "starved", params=params, timeout_s=0.05)
        collector.wait_for("starved", "accepted", timeout=5.0)

        # The worker stays blocked the whole time: only the expiry timer
        # can deliver this. PR 3 would hang here until the blocker fell.
        t0 = time.monotonic()
        timed_out = collector.wait_for("starved", "timeout", timeout=5.0)
        assert time.monotonic() - t0 < 3.0
        assert timed_out["ok"] is False
        assert blocker.release.is_set() is False  # worker never came up

        blocker.release.set()
        collector.wait_for("running", "done")
    finally:
        blocker.release.set()
        server.shutdown(timeout=10.0)


def test_default_timeout_applies_to_queued_jobs(layout_file):
    server = FillServer(serve_config=ServeConfig(
        workers=1, queue_capacity=4, max_batch=1, default_timeout_s=0.05))
    blocker = BlockingExecute(server)
    server.start()
    try:
        collector = Collector()
        params = {"layout_path": layout_file, "method": "lin",
                  "score": False}
        # The running job sets its own generous timeout (request-level
        # timeout_s overrides the server default).
        submit(server, collector, "running", params=params, timeout_s=60.0)
        assert blocker.entered.wait(timeout=10.0)
        submit(server, collector, "implicit", params=params)  # no timeout_s
        collector.wait_for("implicit", "accepted", timeout=5.0)
        collector.wait_for("implicit", "timeout", timeout=5.0)
        blocker.release.set()
        collector.wait_for("running", "done")
    finally:
        blocker.release.set()
        server.shutdown(timeout=10.0)
