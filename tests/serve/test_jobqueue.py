"""Tests for the bounded priority job queue."""

import time

from repro.serve import BoundedJobQueue, Job, JobState, Request


def make_job(job_id: str, priority: int = 0,
             timeout_s: float | None = None) -> Job:
    request = Request(id=job_id, op="fill", params={}, priority=priority,
                      timeout_s=timeout_s)
    return Job(request=request, reply=lambda message: None)


class TestOrdering:
    def test_priority_order(self):
        queue = BoundedJobQueue(capacity=8)
        for job_id, priority in (("low", 0), ("high", 9), ("mid", 5)):
            assert queue.put(make_job(job_id, priority))
        popped = [queue.get(timeout=0.1).id for _ in range(3)]
        assert popped == ["high", "mid", "low"]

    def test_fifo_within_priority(self):
        queue = BoundedJobQueue(capacity=8)
        for job_id in ("a", "b", "c"):
            assert queue.put(make_job(job_id, priority=3))
        assert [queue.get(timeout=0.1).id for _ in range(3)] == ["a", "b", "c"]

    def test_get_marks_running(self):
        queue = BoundedJobQueue(capacity=2)
        queue.put(make_job("a"))
        job = queue.get(timeout=0.1)
        assert job.state is JobState.RUNNING
        assert job.started_at is not None


class TestBackpressure:
    def test_put_refuses_beyond_capacity(self):
        queue = BoundedJobQueue(capacity=2)
        assert queue.put(make_job("a"))
        assert queue.put(make_job("b"))
        assert not queue.put(make_job("c"))
        assert queue.depth() == 2

    def test_capacity_frees_on_get(self):
        queue = BoundedJobQueue(capacity=1)
        assert queue.put(make_job("a"))
        assert queue.get(timeout=0.1).id == "a"
        assert queue.put(make_job("b"))

    def test_duplicate_id_refused(self):
        queue = BoundedJobQueue(capacity=4)
        assert queue.put(make_job("a"))
        assert not queue.put(make_job("a"))

    def test_closed_refuses(self):
        queue = BoundedJobQueue(capacity=4)
        queue.close()
        assert not queue.put(make_job("a"))
        assert queue.get(timeout=0.0) is None


class TestCancellation:
    def test_cancel_pending(self):
        queue = BoundedJobQueue(capacity=4)
        queue.put(make_job("a"))
        queue.put(make_job("b"))
        cancelled = queue.cancel("a")
        assert cancelled is not None
        assert cancelled.state is JobState.CANCELLED
        assert queue.depth() == 1
        # the cancelled heap entry is skipped lazily
        assert queue.get(timeout=0.1).id == "b"
        assert queue.get(timeout=0.0) is None

    def test_cancel_unknown_returns_none(self):
        queue = BoundedJobQueue(capacity=4)
        assert queue.cancel("ghost") is None

    def test_drain_pending_cancels_all(self):
        queue = BoundedJobQueue(capacity=4)
        queue.put(make_job("a"))
        queue.put(make_job("b"))
        drained = queue.drain_pending()
        assert sorted(j.id for j in drained) == ["a", "b"]
        assert all(j.state is JobState.CANCELLED for j in drained)
        assert queue.depth() == 0


class TestDeadlines:
    def test_expire_due_sweeps_past_deadline(self):
        queue = BoundedJobQueue(capacity=4)
        expired_job = make_job("old", timeout_s=0.001)
        queue.put(expired_job)
        queue.put(make_job("fresh", timeout_s=60.0))
        time.sleep(0.01)
        expired = queue.expire_due()
        assert [j.id for j in expired] == ["old"]
        assert expired[0].state is JobState.TIMEOUT
        assert queue.depth() == 1

    def test_deadline_derived_from_timeout(self):
        job = make_job("a", timeout_s=5.0)
        assert job.deadline is not None
        assert not job.expired()
        assert job.expired(now=job.accepted_at + 6.0)

    def test_no_timeout_never_expires(self):
        job = make_job("a")
        assert job.deadline is None
        assert not job.expired(now=time.monotonic() + 1e6)
