"""Tests for the crash-safe accept/done job journal."""

import json

from repro.serve import JobJournal, Request


def make_request(job_id: str) -> Request:
    return Request(id=job_id, op="fill",
                   params={"layout_path": "a.json", "method": "lin"})


class TestReplay:
    def test_accept_without_done_is_pending(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.record_accept(make_request("j1"))
        journal.record_accept(make_request("j2"))
        journal.record_done("j1", "done")
        journal.close()
        pending = JobJournal.read_pending(path)
        assert [spec["id"] for spec in pending] == ["j2"]
        assert pending[0]["params"]["method"] == "lin"

    def test_all_done_means_empty(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        for job_id in ("a", "b"):
            journal.record_accept(make_request(job_id))
            journal.record_done(job_id, "done")
        journal.close()
        assert JobJournal.read_pending(path) == []

    def test_missing_file_is_empty(self, tmp_path):
        assert JobJournal.read_pending(tmp_path / "absent.jsonl") == []

    def test_every_terminal_status_clears(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        for i, status in enumerate(("error", "cancelled", "timeout",
                                    "rejected")):
            journal.record_accept(make_request(f"j{i}"))
            journal.record_done(f"j{i}", status)
        journal.close()
        assert JobJournal.read_pending(path) == []


class TestCrashTolerance:
    def test_torn_final_line_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.record_accept(make_request("ok"))
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "accept", "id": "torn", "requ')  # crash here
        pending = JobJournal.read_pending(path)
        assert [spec["id"] for spec in pending] == ["ok"]

    def test_garbage_lines_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            "\n".join([
                "not json at all",
                json.dumps([1, 2, 3]),
                json.dumps({"event": "accept"}),  # no id
                json.dumps({"event": "accept", "id": "good",
                            "request": make_request("good").to_wire()}),
                json.dumps({"event": "mystery", "id": "good"}),
            ]) + "\n"
        )
        pending = JobJournal.read_pending(path)
        assert [spec["id"] for spec in pending] == ["good"]


class TestRecover:
    def test_recover_truncates_and_reopens(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        first = JobJournal(path)
        first.record_accept(make_request("unfinished"))
        first.close()

        pending, fresh = JobJournal.recover(path)
        assert [spec["id"] for spec in pending] == ["unfinished"]
        # the fresh journal starts clean: old entries are gone
        assert JobJournal.read_pending(path) == []
        fresh.record_accept(make_request("new"))
        fresh.close()
        assert [s["id"] for s in JobJournal.read_pending(path)] == ["new"]

    def test_closed_journal_ignores_writes(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        journal.close()
        journal.record_done("x", "done")  # must not raise
