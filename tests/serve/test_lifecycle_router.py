"""Fleet-level lifecycle tests: swap broadcast + crash-safe generations.

Kept to two scenarios to bound runtime — each boots a forked 2-shard
fleet.  The per-shard mechanics (no-drain binding, journal tagging,
closed retrain loop) are covered in ``test_lifecycle_serve``.
"""

import json
import multiprocessing

import pytest

from repro.cmp import CmpSimulator
from repro.layout.designs import DESIGN_BUILDERS
from repro.layout.io import layout_to_dict
from repro.serve import JobJournal, ServeConfig, ShardRouter
from repro.surrogate import save_surrogate

from .test_server import Collector, submit

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shard router tests need the fork start method",
)


@pytest.fixture(scope="module")
def layout():
    return DESIGN_BUILDERS["A"](rows=8, cols=8, seed=3)


@pytest.fixture(scope="module")
def checkpoints(layout, tmp_path_factory):
    from repro.surrogate import TrainConfig, pretrain_surrogate
    network, _, _ = pretrain_surrogate(
        [layout], layout, sample_count=3, tile_rows=8, tile_cols=8,
        base_channels=4, depth=1, config=TrainConfig(epochs=2, batch_size=2),
        simulator=CmpSimulator(), seed=7)
    root = tmp_path_factory.mktemp("fleet-ckpts")
    gen1 = save_surrogate(root / "gen1", network.unet, network.normalizer,
                          base_channels=4, depth=1)
    gen2 = save_surrogate(root / "gen2", network.unet, network.normalizer,
                          base_channels=4, depth=1,
                          extra_meta={"generation": 2})
    return str(gen1), str(gen2)


def fill_params(layout_dict, **extra):
    params = {"layout": layout_dict, "method": "neurfill-pkb", "model": "m",
              "seed": 0, "max_evaluations": 40, "top_k": 1, "score": False}
    params.update(extra)
    return params


class TestFleetSwapBroadcast:
    def test_swap_reaches_every_shard(self, layout, checkpoints, tmp_path):
        gen1, gen2 = checkpoints
        layout_dict = layout_to_dict(layout)
        journal_path = tmp_path / "journal.jsonl"
        router = ShardRouter(
            serve_config=ServeConfig(workers=1, queue_capacity=8,
                                     max_batch=1, shards=2),
            journal_path=str(journal_path),
            model_specs=[("m", gen1)])
        router.start()
        try:
            collector = Collector()
            submit(router, collector, "j1", params=fill_params(layout_dict))
            first = collector.wait_for("j1", "done", timeout=120.0)
            assert first["result"]["generation"] == 1

            submit(router, collector, "sw", op="swap",
                   params={"model": "m", "directory": gen2})
            reply = collector.wait_for("sw", "done", timeout=60.0)
            assert reply["result"]["generation"] == 2

            # Every shard — not just j1's — must now serve generation 2.
            submit(router, collector, "lc", op="lifecycle")
            status = collector.wait_for("lc", "done")["result"]
            assert status["models"]["m"]["generation"] == 2
            assert len(status["per_shard"]) == 2
            assert all(s["models"]["m"]["generation"] == 2
                       for s in status["per_shard"])

            submit(router, collector, "j2", params=fill_params(layout_dict))
            second = collector.wait_for("j2", "done", timeout=120.0)
            assert second["result"]["generation"] == 2

            # Non-monotonic swap is rejected fleet-wide.
            submit(router, collector, "sw-bad", op="swap",
                   params={"model": "m", "directory": gen1, "generation": 2})
            error = collector.wait_for("sw-bad", "error",
                                       timeout=60.0)["error"]
            assert "failed on shard(s) [0, 1]" in error
            submit(router, collector, "lc2", op="lifecycle")
            assert collector.wait_for(
                "lc2", "done")["result"]["models"]["m"]["generation"] == 2
        finally:
            router.shutdown(timeout=60.0)
        events = [json.loads(line)
                  for line in journal_path.read_text().splitlines()]
        swaps = [e for e in events if e.get("event") == "swap"]
        assert [s["generation"] for s in swaps] == [2]
        dones = {e["id"]: e for e in JobJournal.read_dones(journal_path)}
        assert dones["j1"]["generation"] == 1
        assert dones["j2"]["generation"] == 2


class TestFleetCrashKeepsGeneration:
    def test_full_fleet_kill_then_restart_stays_on_generation_two(
            self, layout, checkpoints, tmp_path):
        """A power-loss restart must not roll the fleet back to the boot
        checkpoint: lifecycle state restores generation 2 everywhere."""
        gen1, gen2 = checkpoints
        layout_dict = layout_to_dict(layout)
        journal_path = str(tmp_path / "journal.jsonl")
        config = ServeConfig(workers=1, queue_capacity=8, max_batch=1,
                             shards=2, shadow_sample_rate=1.0,
                             drift_bound=1e9,
                             lifecycle_dir=str(tmp_path / "lifecycle"))
        first = ShardRouter(serve_config=config, journal_path=journal_path,
                            model_specs=[("m", gen1)])
        first.start()
        try:
            collector = Collector()
            submit(first, collector, "j1", params=fill_params(layout_dict))
            assert collector.wait_for(
                "j1", "done", timeout=120.0)["result"]["generation"] == 1
            assert first.swap_model("m", gen2) == 2
        finally:
            first.kill()  # power loss: no drain, no clean shutdown

        second = ShardRouter(serve_config=config, journal_path=journal_path,
                             model_specs=[("m", gen1)])
        # Restore already ran in __init__: boot specs carry generation 2.
        assert ("m", gen2, 2) in second.model_specs
        second.start()
        try:
            assert second.lifecycle_status()["models"]["m"]["generation"] \
                == 2
            collector = Collector()
            submit(second, collector, "j2", params=fill_params(layout_dict))
            done = collector.wait_for("j2", "done", timeout=120.0)
            assert done["result"]["generation"] == 2
        finally:
            second.shutdown(timeout=60.0)
