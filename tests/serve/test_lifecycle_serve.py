"""FillServer lifecycle integration: hot swap, journal generations, e2e.

Covers the serve-side half of the lifecycle subsystem:

* zero-cost guarantee when shadowing is disabled (the default);
* the ``swap`` op — generation-aware, no-drain, journalled;
* generation tags on served results and journal ``done`` entries,
  including replay across generations after a crash;
* the closed loop: degraded surrogate -> shadow residuals -> drift trip
  -> background retrain -> validated hot swap to generation 2.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.cmp import CmpSimulator
from repro.layout.designs import DESIGN_BUILDERS
from repro.layout.io import layout_to_dict
from repro.serve import (
    FillServer,
    JobJournal,
    ModelRegistry,
    ServeConfig,
    encode,
    parse_request,
)
from repro.surrogate import save_surrogate
from repro.surrogate.network import HeightNormalizer


@pytest.fixture(scope="module")
def layout():
    return DESIGN_BUILDERS["A"](rows=8, cols=8, seed=3)


@pytest.fixture(scope="module")
def layout_dict(layout):
    return layout_to_dict(layout)


@pytest.fixture(scope="module")
def tiny_net(layout):
    from repro.surrogate import TrainConfig, pretrain_surrogate
    network, _, _ = pretrain_surrogate(
        [layout], layout, sample_count=3, tile_rows=8, tile_cols=8,
        base_channels=4, depth=1, config=TrainConfig(epochs=2, batch_size=2),
        simulator=CmpSimulator(), seed=7)
    return network


@pytest.fixture(scope="module")
def ckpt_gen1(tiny_net, tmp_path_factory):
    directory = tmp_path_factory.mktemp("lifecycle") / "gen1"
    return str(save_surrogate(directory, tiny_net.unet, tiny_net.normalizer,
                              base_channels=4, depth=1))


@pytest.fixture(scope="module")
def ckpt_gen2(tiny_net, tmp_path_factory):
    directory = tmp_path_factory.mktemp("lifecycle") / "gen2"
    return str(save_surrogate(directory, tiny_net.unet, tiny_net.normalizer,
                              base_channels=4, depth=1,
                              extra_meta={"generation": 2}))


@pytest.fixture(scope="module")
def ckpt_degraded(tiny_net, tmp_path_factory):
    """Same weights, sabotaged normalizer: predictions off by ~5000 A."""
    directory = tmp_path_factory.mktemp("lifecycle") / "degraded"
    broken = HeightNormalizer(mean=tiny_net.normalizer.mean + 5000.0,
                              std=tiny_net.normalizer.std)
    return str(save_surrogate(directory, tiny_net.unet, broken,
                              base_channels=4, depth=1))


class Collector:
    def __init__(self):
        self.messages = []
        self._cond = threading.Condition()

    def __call__(self, message):
        with self._cond:
            self.messages.append(message)
            self._cond.notify_all()

    def wait_for(self, rid, status, timeout=120.0):
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                for message in self.messages:
                    if message.get("id") == rid \
                            and message.get("status") == status:
                        return message
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise AssertionError(
                        f"no {status!r} for {rid!r}; got {self.messages}")
                self._cond.wait(remaining)


def submit(server, collector, rid, op="fill", params=None):
    server.handle_line(
        encode({"id": rid, "op": op, "params": params or {}}), collector)


def fill_params(layout_dict, **extra):
    params = {"layout": layout_dict, "method": "neurfill-pkb", "model": "m",
              "seed": 0, "max_evaluations": 40, "top_k": 1,
              "return_fill": True, "score": False}
    params.update(extra)
    return params


class TestZeroCostWhenDisabled:
    def test_no_lifecycle_objects_by_default(self, ckpt_gen1):
        registry = ModelRegistry()
        registry.register("m", ckpt_gen1)
        server = FillServer(registry=registry,
                            serve_config=ServeConfig(workers=1, max_batch=1))
        try:
            assert server.lifecycle is None
            assert server.executor.shadow is None
            assert "lifecycle" not in server.stats_snapshot()
        finally:
            server.start()
            server.shutdown(timeout=10.0)

    def test_lifecycle_op_reports_disabled(self, ckpt_gen1):
        registry = ModelRegistry()
        registry.register("m", ckpt_gen1)
        server = FillServer(registry=registry,
                            serve_config=ServeConfig(workers=1, max_batch=1))
        server.start()
        try:
            collector = Collector()
            submit(server, collector, "l1", op="lifecycle")
            result = collector.wait_for("l1", "done")["result"]
            assert result["enabled"] is False
            assert result["models"]["m"]["generation"] == 1
        finally:
            server.shutdown(timeout=10.0)


class TestSwapOp:
    @pytest.fixture()
    def server(self, ckpt_gen1, tmp_path):
        registry = ModelRegistry()
        registry.register("m", ckpt_gen1)
        instance = FillServer(
            registry=registry,
            serve_config=ServeConfig(workers=2, max_batch=1,
                                     drain_timeout_s=60.0),
            journal_path=str(tmp_path / "journal.jsonl"))
        instance.start()
        yield instance
        if not instance.shutdown_complete:
            instance.shutdown(timeout=30.0)

    def test_generations_tag_results_and_journal(self, server, layout_dict,
                                                 ckpt_gen2, tmp_path):
        collector = Collector()
        submit(server, collector, "j1", params=fill_params(layout_dict))
        first = collector.wait_for("j1", "done")
        assert first["result"]["generation"] == 1

        submit(server, collector, "sw1", op="swap",
               params={"model": "m", "directory": ckpt_gen2})
        swap_reply = collector.wait_for("sw1", "done")
        assert swap_reply["result"] == {"model": "m", "generation": 2}

        submit(server, collector, "j2", params=fill_params(layout_dict))
        second = collector.wait_for("j2", "done")
        assert second["result"]["generation"] == 2

        server.shutdown(timeout=30.0)
        journal_path = tmp_path / "journal.jsonl"
        dones = {entry["id"]: entry
                 for entry in JobJournal.read_dones(journal_path)}
        assert dones["j1"]["generation"] == 1
        assert dones["j2"]["generation"] == 2
        events = [json.loads(line)
                  for line in journal_path.read_text().splitlines()]
        swaps = [e for e in events if e.get("event") == "swap"]
        assert swaps and swaps[0]["model"] == "m" \
            and swaps[0]["generation"] == 2

    def test_pre_swap_results_bitwise_match_one_shot(self, server,
                                                     layout, layout_dict,
                                                     ckpt_gen1):
        """Serving under generation 1 is bitwise the one-shot pipeline."""
        from repro.core import FillProblem, ScoreCoefficients
        from repro.core.neurfill import NeurFill
        from repro.optimize.sqp import SqpOptimizer
        from repro.surrogate import load_surrogate

        collector = Collector()
        submit(server, collector, "jp", params=fill_params(layout_dict))
        served = np.array(
            collector.wait_for("jp", "done")["result"]["fill"])

        simulator = CmpSimulator()
        problem = FillProblem(
            layout, ScoreCoefficients.calibrated(layout, simulator))
        direct = NeurFill(
            problem, load_surrogate(ckpt_gen1, layout),
            optimizer=SqpOptimizer(max_iter=80, tol=1e-9),
            simulator=simulator,
        ).run("neurfill-pkb", seed=0, max_evaluations=40, top_k=1)
        np.testing.assert_array_equal(served, direct.fill)

    def test_non_monotonic_swap_rejected(self, server, ckpt_gen1):
        collector = Collector()
        submit(server, collector, "sw-bad", op="swap",
               params={"model": "m", "directory": ckpt_gen1,
                       "generation": 1})
        reply = collector.wait_for("sw-bad", "error")
        assert "increase" in reply["error"]
        assert server.stats.snapshot()["counters"]["swap_rejected"] == 1

    def test_swap_unknown_model_rejected(self, server, ckpt_gen2):
        collector = Collector()
        submit(server, collector, "sw-ghost", op="swap",
               params={"model": "ghost", "directory": ckpt_gen2})
        assert "ghost" in collector.wait_for("sw-ghost", "error")["error"]


class TestNoDrainSwap:
    def test_inflight_job_finishes_on_old_generation(self, ckpt_gen1,
                                                     ckpt_gen2, layout_dict,
                                                     monkeypatch):
        """A swap mid-execution never drains: the in-flight job completes
        on generation 1 while the very next admission binds generation 2.
        """
        registry = ModelRegistry()
        registry.register("m", ckpt_gen1)
        server = FillServer(
            registry=registry,
            serve_config=ServeConfig(workers=2, max_batch=1,
                                     drain_timeout_s=60.0))
        server.start()
        bound = threading.Event()
        release = threading.Event()
        original = server.executor._coalesced_network

        def gated(model_name, layout, fingerprint):
            network, model = original(model_name, layout, fingerprint)
            bound.set()
            release.wait(30.0)
            return network, model

        monkeypatch.setattr(server.executor, "_coalesced_network", gated)
        try:
            collector = Collector()
            submit(server, collector, "inflight",
                   params=fill_params(layout_dict))
            assert bound.wait(30.0), "job never reached the bind point"
            monkeypatch.setattr(server.executor, "_coalesced_network",
                                original)
            # Swap while the job holds its generation-1 binding.
            assert server.swap_model("m", ckpt_gen2) == 2
            release.set()
            done = collector.wait_for("inflight", "done")
            assert done["result"]["generation"] == 1
            submit(server, collector, "after",
                   params=fill_params(layout_dict))
            assert collector.wait_for(
                "after", "done")["result"]["generation"] == 2
        finally:
            release.set()
            server.shutdown(timeout=30.0)


class TestJournalReplayAcrossGenerations:
    def test_resumed_job_runs_on_restored_generation(self, ckpt_gen1,
                                                     ckpt_gen2, layout_dict,
                                                     tmp_path):
        """Crash journal holds a gen-1 done, a swap marker and a pending
        job; the restarted server restores generation 2 from lifecycle
        state and the replayed job completes tagged with it."""
        from repro.lifecycle import STATE_FILENAME, write_state

        journal_path = tmp_path / "journal.jsonl"
        journal = JobJournal(journal_path)
        done_request = parse_request(encode(
            {"id": "old", "op": "fill", "params": fill_params(layout_dict)}))
        journal.record_accept(done_request)
        journal.record_done("old", "done", generation=1)
        journal.record_swap("m", 2, ckpt_gen2)
        pending = parse_request(encode(
            {"id": "resume-me", "op": "fill",
             "params": fill_params(layout_dict)}))
        journal.record_accept(pending)
        journal.close()

        lifecycle_dir = tmp_path / "lifecycle"
        lifecycle_dir.mkdir()
        write_state(lifecycle_dir / STATE_FILENAME, {"models": {
            "m": {"directory": ckpt_gen2, "generation": 2, "swaps": 1}}})

        registry = ModelRegistry()
        registry.register("m", ckpt_gen1)  # boot checkpoint: generation 1
        server = FillServer(
            registry=registry,
            serve_config=ServeConfig(workers=1, max_batch=1,
                                     shadow_sample_rate=1.0,
                                     drift_bound=1e9,
                                     lifecycle_dir=str(lifecycle_dir),
                                     drain_timeout_s=120.0),
            journal_path=str(journal_path))
        try:
            # Restore beat the boot checkpoint before any job ran.
            assert server.registry.generation_of("m") == 2
            assert server.lifecycle_status()["models"]["m"]["generation"] \
                == 2
            server.start()
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                dones = {e["id"]: e
                         for e in JobJournal.read_dones(journal_path)}
                if "resume-me" in dones:
                    break
                time.sleep(0.05)
            assert dones["resume-me"]["status"] == "done"
            assert dones["resume-me"]["generation"] == 2
        finally:
            server.shutdown(timeout=30.0)

    def test_stale_state_for_vanished_checkpoint_is_ignored(self, ckpt_gen1,
                                                            tmp_path):
        from repro.lifecycle import STATE_FILENAME, write_state

        lifecycle_dir = tmp_path / "lifecycle"
        lifecycle_dir.mkdir()
        write_state(lifecycle_dir / STATE_FILENAME, {"models": {
            "m": {"directory": str(tmp_path / "deleted"), "generation": 7}}})
        registry = ModelRegistry()
        registry.register("m", ckpt_gen1)
        server = FillServer(
            registry=registry,
            serve_config=ServeConfig(workers=1, max_batch=1,
                                     shadow_sample_rate=1.0,
                                     drift_bound=1e9,
                                     lifecycle_dir=str(lifecycle_dir)))
        try:
            assert server.registry.generation_of("m") == 1
        finally:
            server.start()
            server.shutdown(timeout=10.0)


class TestClosedLoopEndToEnd:
    def test_drift_retrain_hot_swap_to_generation_two(self, ckpt_degraded,
                                                      layout_dict,
                                                      tmp_path):
        """The full loop: a degraded surrogate's shadow residuals trip the
        drift window, the background retrain produces a validated gen-2
        checkpoint, and the server hot-swaps to it with zero dropped jobs.
        """
        registry = ModelRegistry()
        registry.register("m", ckpt_degraded)
        config = ServeConfig(
            workers=2, max_batch=1, drain_timeout_s=120.0,
            # trip_count == number of pre-swap jobs: the window can only
            # trip once all three have completed, so none can race the
            # background swap and come back tagged generation 2.
            shadow_sample_rate=1.0, drift_bound=2000.0,
            drift_window=4, drift_trip_count=3,
            auto_retrain=True, retrain_samples=2, retrain_epochs=1,
            retrain_seed=7, lifecycle_dir=str(tmp_path / "lifecycle"))
        server = FillServer(registry=registry, serve_config=config,
                            journal_path=str(tmp_path / "journal.jsonl"))
        server.start()
        try:
            collector = Collector()
            for i in range(3):
                submit(server, collector, f"pre{i}",
                       params=fill_params(layout_dict))
            pre = [collector.wait_for(f"pre{i}", "done") for i in range(3)]
            assert all(m["result"]["generation"] == 1 for m in pre)

            # Shadow residuals (~5000 A >> bound) must trip the window and
            # drive the retrain + swap in the background.
            deadline = time.monotonic() + 240.0
            while time.monotonic() < deadline:
                status = server.lifecycle_status()
                if status["models"]["m"]["generation"] >= 2:
                    break
                retrain = status.get("retrain") or {}
                assert retrain.get("state") != "retrain_failed", retrain
                time.sleep(0.1)
            status = server.lifecycle_status()
            assert status["models"]["m"]["generation"] == 2, status
            assert server.registry.generation_of("m") == 2
            assert status["retrain"]["successes"] == 1
            verdict = status["retrain"]["last_validation"]
            assert verdict["candidate_rmse"] < verdict["incumbent_rmse"]

            # Post-swap service continues uninterrupted on generation 2...
            submit(server, collector, "post",
                   params=fill_params(layout_dict))
            post = collector.wait_for("post", "done")
            assert post["result"]["generation"] == 2

            # ...and the gen-2 checkpoint carries its lineage.
            from repro.surrogate.persist import read_checkpoint_meta
            gen2_dir = status["generations"]["m"]["directory"]
            meta = read_checkpoint_meta(gen2_dir)
            assert meta["generation"] == 2
            assert meta["parent_generation"] == 1
            assert meta["seed"] == 7

            # Post-swap residuals improved over the degraded incumbent.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                drift = server.lifecycle_status()["drift"].get("m") or {}
                if drift.get("last_generation") == 2:
                    break
                time.sleep(0.05)
            assert drift.get("last_generation") == 2, drift
            assert drift["last_rmse"] < 5000.0

            counters = server.stats.snapshot()["counters"]
            assert counters.get("error", 0) == 0
            assert counters.get("worker_died", 0) == 0
        finally:
            server.shutdown(timeout=60.0)
        dones = JobJournal.read_dones(tmp_path / "journal.jsonl")
        by_id = {e["id"]: e for e in dones}
        assert all(by_id[f"pre{i}"]["generation"] == 1 for i in range(3))
        assert by_id["post"]["generation"] == 2
        assert all("generation" in e for e in dones)


class TestProcessModeSwap:
    def test_workers_reload_without_respawn(self, ckpt_gen1, ckpt_gen2,
                                            layout_dict):
        registry = ModelRegistry()
        registry.register("m", ckpt_gen1)
        server = FillServer(
            registry=registry,
            serve_config=ServeConfig(workers=2, max_batch=1,
                                     worker_mode="process",
                                     drain_timeout_s=120.0))
        server.start()
        try:
            collector = Collector()
            submit(server, collector, "j1", params=fill_params(layout_dict))
            assert collector.wait_for(
                "j1", "done")["result"]["generation"] == 1
            pids = sorted(h.process.pid for h in server._pool._handles)

            assert server.swap_model("m", ckpt_gen2) == 2

            submit(server, collector, "j2", params=fill_params(layout_dict))
            assert collector.wait_for(
                "j2", "done")["result"]["generation"] == 2
            assert sorted(h.process.pid
                          for h in server._pool._handles) == pids, \
                "swap must reload in place, not respawn workers"
        finally:
            server.shutdown(timeout=60.0)
