"""Process worker mode: parity, crash containment, warm-state propagation.

These tests fork real worker children.  The crash tests monkeypatch
``JobExecutor.execute`` at class level *before* ``server.start()`` — the
children are forked at start, so they inherit the patch — and gate the
patched body on sentinel files, which gives the parent a deterministic
window to SIGKILL a child mid-job.
"""

import json
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.layout import save_layout
from repro.layout.designs import DESIGN_BUILDERS
from repro.serve import FillServer, ServeConfig
from repro.serve.executor import JobExecutor as ExecutorClass

from .test_server import Collector, submit

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process worker tests need the fork start method",
)

pytestmark = fork_only


@pytest.fixture()
def layout_file(tmp_path):
    path = tmp_path / "a.json"
    save_layout(DESIGN_BUILDERS["A"](rows=8, cols=8, seed=3), str(path))
    return str(path)


def _deterministic(result: dict) -> str:
    """Serialise a fill result minus its wall-clock-dependent fields."""
    result = dict(result)
    result.pop("runtime_s", None)
    if "score" in result:
        # score.overall folds runtime_s in via beta_runtime.
        result["score"] = {k: v for k, v in result["score"].items()
                          if k != "overall"}
    return json.dumps(result, sort_keys=True, separators=(",", ":"))


def _wait_until(predicate, timeout=60.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


class TestProcessModeParity:
    def test_fill_matches_thread_mode_bitwise(self, layout_file):
        params = {"layout_path": layout_file, "method": "lin",
                  "return_fill": True}
        results = {}
        for mode in ("thread", "process"):
            server = FillServer(serve_config=ServeConfig(
                workers=2, queue_capacity=8, max_batch=1, worker_mode=mode))
            server.start()
            try:
                collector = Collector()
                submit(server, collector, "j1", params=params)
                results[mode] = collector.wait_for("j1", "done")["result"]
            finally:
                server.shutdown(timeout=30.0)
        # The protocol's repr-roundtrip float encoding means equal JSON
        # strings == bitwise-identical fill vectors and metrics.
        assert _deterministic(results["thread"]) == \
            _deterministic(results["process"])
        assert np.array(results["process"]["fill"]).shape == (3, 8, 8)

    def test_job_error_surfaces_identically(self, layout_file):
        params = {"layout_path": layout_file + ".does-not-exist",
                  "method": "lin"}
        errors = {}
        for mode in ("thread", "process"):
            server = FillServer(serve_config=ServeConfig(
                workers=1, queue_capacity=4, max_batch=1, worker_mode=mode))
            server.start()
            try:
                collector = Collector()
                submit(server, collector, "bad", params=params)
                errors[mode] = collector.wait_for("bad", "error")["error"]
            finally:
                server.shutdown(timeout=30.0)
        assert errors["thread"] == errors["process"]

    def test_stats_report_process_workers(self, layout_file):
        server = FillServer(serve_config=ServeConfig(
            workers=2, queue_capacity=8, max_batch=1,
            worker_mode="process"))
        server.start()
        try:
            collector = Collector()
            submit(server, collector, "st", op="stats")
            snapshot = collector.wait_for("st", "done")["result"]
            assert snapshot["worker_mode"] == "process"
            workers = snapshot["proc_workers"]
            assert len(workers) == 2
            assert all(w["alive"] for w in workers)
            assert all(w["pid"] not in (None, os.getpid()) for w in workers)
        finally:
            server.shutdown(timeout=30.0)


class TestWorkerCrash:
    def test_sigkill_mid_job_yields_worker_died_and_respawns(
            self, tmp_path, layout_file, monkeypatch):
        sentinel = tmp_path / "hold"
        sentinel.write_text("x")
        markers = tmp_path / "markers"
        markers.mkdir()
        orig = ExecutorClass.execute

        def gated(self, request):
            (markers / f"started-{request.id}-{os.getpid()}").write_text("x")
            while sentinel.exists():
                time.sleep(0.05)
            return orig(self, request)

        monkeypatch.setattr(ExecutorClass, "execute", gated)

        server = FillServer(serve_config=ServeConfig(
            workers=1, queue_capacity=4, max_batch=1,
            worker_mode="process"))
        server.start()  # forks AFTER the patch: children inherit it
        try:
            collector = Collector()
            params = {"layout_path": layout_file, "method": "lin",
                      "score": False}
            submit(server, collector, "victim", params=params)
            _wait_until(
                lambda: list(markers.glob("started-victim-*")),
                message="the child to start executing the job")
            pid = server._pool.pids()[0]
            assert pid is not None
            os.kill(pid, signal.SIGKILL)

            died = collector.wait_for("victim", "worker_died", timeout=30.0)
            assert died["ok"] is False
            assert "died" in died["error"]

            # The slot respawns; with the sentinel gone the next job runs
            # through to completion on the fresh child.
            sentinel.unlink()
            submit(server, collector, "after", params=params)
            collector.wait_for("after", "done", timeout=60.0)

            counters = server.stats.snapshot()["counters"]
            assert counters.get("worker_died") == 1
            assert counters.get("worker_respawns", 0) >= 1
            new_pid = server._pool.pids()[0]
            assert new_pid is not None and new_pid != pid
        finally:
            if sentinel.exists():
                sentinel.unlink()
            server.shutdown(timeout=30.0)


class TestConvPlanPropagation:
    def test_forked_worker_uses_persisted_plan(
            self, tmp_path, layout_file, monkeypatch):
        """Satellite 6: children load the persisted conv plan cache at
        boot instead of re-benchmarking per fork, and honor the plan."""
        from repro.nn import dispatch

        key = dispatch._plan_key("corr", 1, 1, 16, 16, 1, 3, 3, 1,
                                 np.dtype("float64"))
        plan_file = tmp_path / "conv_plans.json"
        plan_file.write_text(json.dumps({
            "version": 1,
            "numpy": np.__version__,
            "plans": {key: {"backend": "fft", "timings_ms": {},
                            "max_abs_dev": 0.0}},
        }))
        monkeypatch.setenv("REPRO_CONV_PLAN_CACHE", str(plan_file))
        # Cold parent state: prove the CHILD loads the file itself via
        # warm_plan_cache() rather than inheriting a warm table.
        dispatch.clear_caches(reload_persisted=False)

        def diagnostic(self, request):
            table_at_boot = dispatch.plan_table()
            x = np.zeros((1, 1, 16, 16))
            w = np.ones((1, 1, 3, 3))
            dispatch.corr2d(x, w)
            plan = dispatch.plan_table().get(key) or {}
            return {
                "pid": os.getpid(),
                "loaded_at_boot": key in table_at_boot,
                "backend": plan.get("backend"),
                "source": plan.get("source"),
            }

        monkeypatch.setattr(ExecutorClass, "execute", diagnostic)
        server = FillServer(serve_config=ServeConfig(
            workers=1, queue_capacity=4, max_batch=1,
            worker_mode="process"))
        server.start()
        try:
            assert server._pool.describe()[0]["boot_plans"] >= 1
            collector = Collector()
            submit(server, collector, "probe",
                   params={"layout_path": layout_file, "method": "lin"})
            result = collector.wait_for("probe", "done")["result"]
            assert result["pid"] != os.getpid()
            assert result["loaded_at_boot"] is True
            assert result["source"] == "persisted"  # not re-benchmarked
            assert result["backend"] == "fft"       # the plan is honored
        finally:
            server.shutdown(timeout=30.0)
            dispatch.clear_caches(reload_persisted=True)

    def test_backend_override_validated_in_child_env(
            self, tmp_path, layout_file, monkeypatch):
        """REPRO_CONV_BACKEND reaches forked workers (env is inherited)."""
        monkeypatch.setenv("REPRO_CONV_BACKEND", "matmul")

        def probe(self, request):
            from repro.config import conv_backend_override
            return {"pid": os.getpid(),
                    "override": conv_backend_override()}

        monkeypatch.setattr(ExecutorClass, "execute", probe)
        server = FillServer(serve_config=ServeConfig(
            workers=1, queue_capacity=4, max_batch=1,
            worker_mode="process"))
        server.start()
        try:
            collector = Collector()
            submit(server, collector, "env",
                   params={"layout_path": layout_file, "method": "lin"})
            result = collector.wait_for("env", "done")["result"]
            assert result["override"] == "matmul"
            assert result["pid"] != os.getpid()
        finally:
            server.shutdown(timeout=30.0)
