"""Tests for the line-JSON protocol (framing, validation, float exactness)."""

import math

import numpy as np
import pytest

from repro.serve import ProtocolError, decode, encode, parse_request, response
from repro.serve.protocol import json_safe


class TestRoundTrip:
    def test_request_round_trip(self):
        request = parse_request(encode({
            "id": "j1", "op": "fill", "priority": 5, "timeout_s": 2.5,
            "params": {"layout_path": "a.json", "method": "lin"},
        }))
        assert request.id == "j1"
        assert request.op == "fill"
        assert request.priority == 5
        assert request.timeout_s == 2.5
        assert request.params["method"] == "lin"
        assert parse_request(encode(request.to_wire())) == request

    def test_floats_survive_bitwise(self):
        """json repr round-trips IEEE-754 doubles exactly — the basis of
        exact fill transport through ``return_fill``."""
        rng = np.random.default_rng(0)
        fill = rng.uniform(0.0, 1e6, size=(3, 8, 8))
        fill[0, 0, 0] = 0.1 + 0.2  # classic non-representable sum
        wire = decode(encode({"id": "x", "fill": fill.tolist()}))
        back = np.array(wire["fill"])
        assert np.array_equal(back, fill)

    def test_encode_is_single_line(self):
        assert "\n" not in encode({"id": "a", "text": "two\nlines"})


class TestValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_request(encode({"id": "j1", "op": "explode"}))

    def test_missing_id_rejected(self):
        with pytest.raises(ProtocolError, match="request id"):
            parse_request(encode({"op": "ping"}))

    @pytest.mark.parametrize("line", ["not json", "[1,2]", '"str"'])
    def test_non_object_rejected(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line)

    def test_bad_priority_rejected(self):
        with pytest.raises(ProtocolError, match="priority"):
            parse_request(encode({"id": "j", "op": "ping", "priority": "hi"}))

    def test_bad_timeout_rejected(self):
        with pytest.raises(ProtocolError, match="timeout_s"):
            parse_request(encode({"id": "j", "op": "ping", "timeout_s": -1}))


class TestResponse:
    def test_ok_derivation(self):
        assert response("j", "done")["ok"] is True
        assert response("j", "accepted")["ok"] is True
        for status in ("error", "rejected", "cancelled", "timeout"):
            assert response("j", status)["ok"] is False

    def test_unknown_status_raises(self):
        with pytest.raises(ValueError):
            response("j", "exploded")

    def test_non_finite_floats_sanitised(self):
        """NaN quality (rule-based fills) must still encode: allow_nan is
        off, so ``response`` maps non-finite floats to null."""
        message = response("j", "done", result={
            "quality": math.nan, "bad": [math.inf, 1.5],
            "nested": {"x": -math.inf},
        })
        assert message["result"]["quality"] is None
        assert message["result"]["bad"] == [None, 1.5]
        assert message["result"]["nested"]["x"] is None
        encode(message)  # must not raise

    def test_json_safe_keeps_finite_values(self):
        value = {"a": 1.5, "b": [2, "s", 0.1 + 0.2], "c": True}
        assert json_safe(value) == value
