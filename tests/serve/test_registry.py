"""Tests for the warm-loading model registry and its bound-network LRU."""

import numpy as np
import pytest

from repro.layout import make_design_a, make_design_b
from repro.serve import ModelRegistry, layout_fingerprint
from repro.surrogate import save_surrogate


@pytest.fixture()
def checkpoint(trained_surrogate, tmp_path):
    net = trained_surrogate
    return str(save_surrogate(tmp_path / "ckpt", net.unet, net.normalizer,
                              base_channels=6, depth=2))


class TestFingerprint:
    def test_stable_for_equal_content(self):
        a = make_design_a(rows=8, cols=8, seed=3)
        b = make_design_a(rows=8, cols=8, seed=3)
        assert layout_fingerprint(a) == layout_fingerprint(b)

    def test_differs_across_content(self):
        a = make_design_a(rows=8, cols=8, seed=3)
        b = make_design_a(rows=8, cols=8, seed=4)
        assert layout_fingerprint(a) != layout_fingerprint(b)


class TestRegistration:
    def test_register_warm_loads(self, checkpoint):
        registry = ModelRegistry()
        model = registry.register("pkb", checkpoint)
        assert model.bundle.arch["base_channels"] == 6
        assert "pkb" in registry
        assert registry.names() == ["pkb"]
        assert registry.describe()["pkb"]["directory"] == checkpoint

    def test_register_spec(self, checkpoint):
        registry = ModelRegistry()
        assert registry.register_spec(f"pkb={checkpoint}").name == "pkb"
        with pytest.raises(ValueError, match="NAME=CHECKPOINT_DIR"):
            registry.register_spec("no-equals-sign")

    def test_bad_checkpoint_fails_at_registration(self, tmp_path):
        registry = ModelRegistry()
        with pytest.raises(FileNotFoundError):
            registry.register("pkb", tmp_path / "nope")
        assert len(registry) == 0

    def test_unknown_model_lists_registered(self, checkpoint):
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        with pytest.raises(KeyError, match="pkb"):
            registry.network_for("ghost", make_design_a(rows=8, cols=8))


class TestBinding:
    def test_network_for_caches_per_layout(self, checkpoint):
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        layout = make_design_a(rows=8, cols=8)
        first = registry.network_for("pkb", layout)
        second = registry.network_for("pkb", layout)
        assert first is second

    def test_distinct_layouts_get_distinct_bindings(self, checkpoint):
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        a = registry.network_for("pkb", make_design_a(rows=8, cols=8))
        b = registry.network_for("pkb", make_design_b(rows=10, cols=12))
        assert a is not b
        assert a.predict_heights().shape != b.predict_heights().shape

    def test_lru_eviction_bounds_memory(self, checkpoint):
        registry = ModelRegistry(max_bound=2)
        registry.register("pkb", checkpoint)
        layouts = [make_design_a(rows=8, cols=8, seed=s) for s in range(3)]
        bindings = [registry.network_for("pkb", l) for l in layouts]
        assert len(registry._bound) == 2
        # the oldest binding was evicted; re-requesting makes a fresh one
        again = registry.network_for("pkb", layouts[0])
        assert again is not bindings[0]

    def test_reregister_invalidates_bindings(self, checkpoint):
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        layout = make_design_a(rows=8, cols=8)
        old = registry.network_for("pkb", layout)
        registry.register("pkb", checkpoint)  # replaced (same files)
        fresh = registry.network_for("pkb", layout)
        assert fresh is not old

    def test_bindings_share_weights(self, checkpoint):
        """Rebinding reuses the warm UNet — no per-layout weight copies."""
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        a = registry.network_for("pkb", make_design_a(rows=8, cols=8))
        b = registry.network_for("pkb", make_design_b(rows=10, cols=12))
        assert a.unet is b.unet

    def test_bound_prediction_matches_direct_load(self, checkpoint,
                                                  small_layout):
        from repro.surrogate import load_surrogate
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        bound = registry.network_for("pkb", small_layout)
        direct = load_surrogate(checkpoint, small_layout)
        fill = 0.25 * small_layout.slack_stack()
        np.testing.assert_array_equal(bound.predict_heights(fill),
                                      direct.predict_heights(fill))


class TestStampInvalidation:
    """Binding must key on checkpoint *content*, not path alone.

    Regression: the pre-lifecycle registry cached bound networks by
    (model, fingerprint) only, so a checkpoint overwritten in place at
    the same path kept serving the stale warm copy forever.
    """

    def _altered_copy(self, trained_surrogate, directory):
        """Save a same-arch checkpoint with visibly different weights."""
        import copy

        net = trained_surrogate
        unet = copy.deepcopy(net.unet)
        state = unet.state_dict()
        first = sorted(state)[0]
        state[first] = np.asarray(state[first]) + 0.5
        unet.load_state_dict(state)
        return save_surrogate(directory, unet, net.normalizer,
                              base_channels=6, depth=2)

    def test_in_place_overwrite_is_rebound(self, trained_surrogate,
                                           checkpoint, tmp_path):
        import os
        import shutil

        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        layout = make_design_a(rows=8, cols=8)
        fill = 0.25 * layout.slack_stack()
        before = registry.network_for("pkb", layout).predict_heights(fill)

        altered = self._altered_copy(trained_surrogate, tmp_path / "v2")
        for name in ("surrogate.json", "unet.npz"):
            shutil.copy2(altered / name, os.path.join(checkpoint, name))
            # mtime_ns must actually differ for the stamp to change even
            # on coarse-mtime filesystems.
            stat = os.stat(os.path.join(checkpoint, name))
            os.utime(os.path.join(checkpoint, name),
                     ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))

        after = registry.network_for("pkb", layout).predict_heights(fill)
        assert not np.array_equal(before, after), \
            "overwritten checkpoint was served stale"

    def test_unchanged_checkpoint_stays_cached(self, checkpoint):
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        layout = make_design_a(rows=8, cols=8)
        assert registry.network_for("pkb", layout) \
            is registry.network_for("pkb", layout)


class TestGenerationSwap:
    @pytest.fixture()
    def second_checkpoint(self, trained_surrogate, tmp_path):
        net = trained_surrogate
        return str(save_surrogate(tmp_path / "gen2", net.unet,
                                  net.normalizer, base_channels=6, depth=2,
                                  extra_meta={"generation": 2}))

    def test_register_defaults_to_generation_one(self, checkpoint):
        registry = ModelRegistry()
        assert registry.register("pkb", checkpoint).generation == 1
        assert registry.generation_of("pkb") == 1

    def test_register_reads_generation_from_metadata(self,
                                                     second_checkpoint):
        registry = ModelRegistry()
        assert registry.register("pkb", second_checkpoint).generation == 2

    def test_swap_rebinds_without_drain(self, checkpoint,
                                        second_checkpoint):
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        layout = make_design_a(rows=8, cols=8)
        old_network, old_model = registry.bind("pkb", layout)
        swapped = registry.swap("pkb", second_checkpoint)
        assert swapped.generation == 2
        new_network, new_model = registry.bind("pkb", layout)
        # The old binding object is still fully usable (in-flight jobs
        # holding it finish on generation 1)...
        assert old_model.generation == 1
        old_network.predict_heights(0.25 * layout.slack_stack())
        # ...while new binds see generation 2.
        assert new_model.generation == 2
        assert new_network is not old_network

    def test_swap_generation_must_increase(self, checkpoint,
                                           second_checkpoint):
        registry = ModelRegistry()
        registry.register("pkb", second_checkpoint)  # already generation 2
        with pytest.raises(ValueError, match="must increase"):
            registry.swap("pkb", checkpoint, generation=2)
        with pytest.raises(ValueError, match="must increase"):
            registry.swap("pkb", checkpoint, generation=1)

    def test_swap_unknown_model_raises(self, checkpoint):
        registry = ModelRegistry()
        with pytest.raises(KeyError, match="register it first"):
            registry.swap("ghost", checkpoint)

    def test_swap_defaults_to_increment(self, checkpoint):
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        assert registry.swap("pkb", checkpoint).generation == 2
        assert registry.swap("pkb", checkpoint).generation == 3

    def test_describe_reports_generation(self, checkpoint,
                                         second_checkpoint):
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        registry.swap("pkb", second_checkpoint)
        assert registry.describe()["pkb"]["generation"] == 2
