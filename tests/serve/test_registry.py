"""Tests for the warm-loading model registry and its bound-network LRU."""

import numpy as np
import pytest

from repro.layout import make_design_a, make_design_b
from repro.serve import ModelRegistry, layout_fingerprint
from repro.surrogate import save_surrogate


@pytest.fixture()
def checkpoint(trained_surrogate, tmp_path):
    net = trained_surrogate
    return str(save_surrogate(tmp_path / "ckpt", net.unet, net.normalizer,
                              base_channels=6, depth=2))


class TestFingerprint:
    def test_stable_for_equal_content(self):
        a = make_design_a(rows=8, cols=8, seed=3)
        b = make_design_a(rows=8, cols=8, seed=3)
        assert layout_fingerprint(a) == layout_fingerprint(b)

    def test_differs_across_content(self):
        a = make_design_a(rows=8, cols=8, seed=3)
        b = make_design_a(rows=8, cols=8, seed=4)
        assert layout_fingerprint(a) != layout_fingerprint(b)


class TestRegistration:
    def test_register_warm_loads(self, checkpoint):
        registry = ModelRegistry()
        model = registry.register("pkb", checkpoint)
        assert model.bundle.arch["base_channels"] == 6
        assert "pkb" in registry
        assert registry.names() == ["pkb"]
        assert registry.describe()["pkb"]["directory"] == checkpoint

    def test_register_spec(self, checkpoint):
        registry = ModelRegistry()
        assert registry.register_spec(f"pkb={checkpoint}").name == "pkb"
        with pytest.raises(ValueError, match="NAME=CHECKPOINT_DIR"):
            registry.register_spec("no-equals-sign")

    def test_bad_checkpoint_fails_at_registration(self, tmp_path):
        registry = ModelRegistry()
        with pytest.raises(FileNotFoundError):
            registry.register("pkb", tmp_path / "nope")
        assert len(registry) == 0

    def test_unknown_model_lists_registered(self, checkpoint):
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        with pytest.raises(KeyError, match="pkb"):
            registry.network_for("ghost", make_design_a(rows=8, cols=8))


class TestBinding:
    def test_network_for_caches_per_layout(self, checkpoint):
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        layout = make_design_a(rows=8, cols=8)
        first = registry.network_for("pkb", layout)
        second = registry.network_for("pkb", layout)
        assert first is second

    def test_distinct_layouts_get_distinct_bindings(self, checkpoint):
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        a = registry.network_for("pkb", make_design_a(rows=8, cols=8))
        b = registry.network_for("pkb", make_design_b(rows=10, cols=12))
        assert a is not b
        assert a.predict_heights().shape != b.predict_heights().shape

    def test_lru_eviction_bounds_memory(self, checkpoint):
        registry = ModelRegistry(max_bound=2)
        registry.register("pkb", checkpoint)
        layouts = [make_design_a(rows=8, cols=8, seed=s) for s in range(3)]
        bindings = [registry.network_for("pkb", l) for l in layouts]
        assert len(registry._bound) == 2
        # the oldest binding was evicted; re-requesting makes a fresh one
        again = registry.network_for("pkb", layouts[0])
        assert again is not bindings[0]

    def test_reregister_invalidates_bindings(self, checkpoint):
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        layout = make_design_a(rows=8, cols=8)
        old = registry.network_for("pkb", layout)
        registry.register("pkb", checkpoint)  # replaced (same files)
        fresh = registry.network_for("pkb", layout)
        assert fresh is not old

    def test_bindings_share_weights(self, checkpoint):
        """Rebinding reuses the warm UNet — no per-layout weight copies."""
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        a = registry.network_for("pkb", make_design_a(rows=8, cols=8))
        b = registry.network_for("pkb", make_design_b(rows=10, cols=12))
        assert a.unet is b.unet

    def test_bound_prediction_matches_direct_load(self, checkpoint,
                                                  small_layout):
        from repro.surrogate import load_surrogate
        registry = ModelRegistry()
        registry.register("pkb", checkpoint)
        bound = registry.network_for("pkb", small_layout)
        direct = load_surrogate(checkpoint, small_layout)
        fill = 0.25 * small_layout.slack_stack()
        np.testing.assert_array_equal(bound.predict_heights(fill),
                                      direct.predict_heights(fill))
