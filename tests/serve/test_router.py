"""Sharded-fleet tests: routing affinity, aggregation, crash recovery.

The crash tests follow the same pattern as ``test_procpool``: patch
``JobExecutor.execute`` at class level before ``router.start()`` so the
forked shard children inherit the patch, and gate the patched body on
sentinel files for a deterministic SIGKILL window.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.layout import save_layout
from repro.layout.designs import DESIGN_BUILDERS
from repro.serve import (
    JobJournal,
    ServeConfig,
    ShardRouter,
    rendezvous_shard,
    routing_key,
)
from repro.serve.executor import JobExecutor as ExecutorClass

from .test_server import Collector, submit

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shard router tests need the fork start method",
)


@pytest.fixture()
def layout_file(tmp_path):
    path = tmp_path / "a.json"
    save_layout(DESIGN_BUILDERS["A"](rows=8, cols=8, seed=3), str(path))
    return str(path)


def _wait_until(predicate, timeout=60.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


class TestRouting:
    """Pure-function routing properties; no processes involved."""

    def test_same_layout_same_shard(self):
        key = routing_key({"layout_path": "/designs/a.json"})
        assert all(rendezvous_shard(key, 4) == rendezvous_shard(key, 4)
                   for _ in range(10))

    def test_inline_layout_keys_on_content_not_ordering(self):
        a = routing_key({"layout": {"name": "x", "rows": 8}})
        b = routing_key({"layout": {"rows": 8, "name": "x"}})
        c = routing_key({"layout": {"name": "y", "rows": 8}})
        assert a == b
        assert a != c

    def test_keys_spread_across_shards(self):
        shards = {rendezvous_shard(routing_key(
            {"layout_path": f"/designs/{k}.json"}), 4) for k in range(64)}
        assert len(shards) == 4  # 64 keys over 4 shards hit every shard

    def test_adding_a_shard_remaps_a_minority(self):
        keys = [routing_key({"layout_path": f"/designs/{k}.json"})
                for k in range(200)]
        moved = sum(rendezvous_shard(key, 4) != rendezvous_shard(key, 5)
                    for key in keys)
        # Rendezvous hashing moves ~1/5 of keys when going 4 -> 5;
        # mod-hashing would move ~4/5.  Allow generous slack.
        assert moved < 200 * 0.4

    def test_requires_two_shards(self):
        with pytest.raises(ValueError):
            ShardRouter(serve_config=ServeConfig(shards=1))


class TestFleetRoundTrip:
    def test_jobs_complete_and_stats_aggregate(self, layout_file, tmp_path):
        other = tmp_path / "b.json"
        save_layout(DESIGN_BUILDERS["A"](rows=8, cols=8, seed=7), str(other))
        router = ShardRouter(serve_config=ServeConfig(
            workers=1, queue_capacity=8, max_batch=1, shards=2))
        router.start()
        try:
            collector = Collector()
            for rid, path in (("j1", layout_file), ("j2", str(other))):
                submit(router, collector, rid,
                       params={"layout_path": path, "method": "lin",
                               "score": False})
            collector.wait_for("j1", "done")
            collector.wait_for("j2", "done")

            submit(router, collector, "st", op="stats")
            snapshot = collector.wait_for("st", "done")["result"]
            assert snapshot["shards"] == 2
            assert snapshot["counters"]["accepted"] == 2
            assert snapshot["counters"]["completed"] == 2
            assert len(snapshot["per_shard"]) == 2
            assert all(s.get("shard_id") == i
                       for i, s in enumerate(snapshot["per_shard"]))

            submit(router, collector, "pg", op="ping")
            assert collector.wait_for("pg", "done")["result"]["pong"] is True
            submit(router, collector, "md", op="models")
            assert collector.wait_for("md", "done")["result"]["models"] == {}
        finally:
            router.shutdown(timeout=30.0)
        assert router.shutdown_complete

    def test_process_workers_compose_with_shards(self, layout_file):
        """Shards must not be daemonic: each forks its own worker pool
        when the fleet runs ``worker_mode="process"``."""
        router = ShardRouter(serve_config=ServeConfig(
            workers=1, queue_capacity=8, max_batch=1, shards=2,
            worker_mode="process"))
        router.start()
        try:
            collector = Collector()
            submit(router, collector, "pj",
                   params={"layout_path": layout_file, "method": "lin",
                           "score": False})
            collector.wait_for("pj", "done", timeout=120.0)
            submit(router, collector, "st", op="stats")
            snapshot = collector.wait_for("st", "done")["result"]
            assert snapshot["worker_mode"] == "process"
            assert all(len(s.get("proc_workers", ())) == 1
                       for s in snapshot["per_shard"])
        finally:
            router.shutdown(timeout=60.0)

    def test_duplicate_id_rejected(self, layout_file):
        router = ShardRouter(serve_config=ServeConfig(
            workers=1, queue_capacity=8, max_batch=1, shards=2))
        router.start()
        try:
            collector = Collector()
            params = {"layout_path": layout_file, "method": "lin",
                      "score": False}
            submit(router, collector, "dup", params=params)
            submit(router, collector, "dup", params=params)
            rejected = collector.wait_for("dup", "rejected", timeout=10.0)
            assert "duplicate" in rejected["error"]
            collector.wait_for("dup", "done")
        finally:
            router.shutdown(timeout=30.0)


class TestShardCrash:
    def test_sigkill_mid_job_redispatches_then_fails_on_second_crash(
            self, tmp_path, layout_file, monkeypatch):
        sentinel = tmp_path / "hold"
        sentinel.write_text("x")
        markers = tmp_path / "markers"
        markers.mkdir()
        orig = ExecutorClass.execute

        def gated(self, request):
            (markers / f"started-{request.id}-{os.getpid()}").write_text("x")
            while sentinel.exists():
                time.sleep(0.05)
            return orig(self, request)

        monkeypatch.setattr(ExecutorClass, "execute", gated)

        router = ShardRouter(serve_config=ServeConfig(
            workers=1, queue_capacity=8, max_batch=1, shards=2))
        router.start()
        try:
            collector = Collector()
            params = {"layout_path": layout_file, "method": "lin",
                      "score": False}
            submit(router, collector, "victim", params=params)
            collector.wait_for("victim", "accepted", timeout=30.0)
            _wait_until(
                lambda: list(markers.glob("started-victim-*")),
                message="a shard child to start executing the job")

            shard = router._entries["victim"].shard
            first_pid = router._shards[shard].process.pid
            os.kill(first_pid, signal.SIGKILL)

            # First crash: respawned shard re-runs the job (not lost, not
            # failed) — a second marker appears from a different pid.
            _wait_until(
                lambda: len(set(markers.glob("started-victim-*"))) >= 2,
                message="the respawned shard to re-execute the job")
            assert "worker_died" not in collector.statuses("victim")
            second_pid = router._shards[shard].process.pid
            assert second_pid != first_pid

            # Second crash of the same job: fail it distinguishably
            # rather than crash-looping the shard forever.
            os.kill(second_pid, signal.SIGKILL)
            died = collector.wait_for("victim", "worker_died", timeout=30.0)
            assert died["ok"] is False

            # The fleet survives: the shard respawns again and fresh
            # jobs (to either shard) complete once the gate is open.
            sentinel.unlink()
            submit(router, collector, "after", params=params)
            collector.wait_for("after", "done", timeout=60.0)

            counters = router.stats.snapshot()["counters"]
            assert counters.get("redispatched") == 1
            assert counters.get("worker_died") == 1
            assert counters.get("shard_respawns", 0) >= 2
        finally:
            if sentinel.exists():
                sentinel.unlink()
            router.shutdown(timeout=30.0)

    def test_other_shards_unaffected_by_a_crash(
            self, tmp_path, layout_file, monkeypatch):
        router = ShardRouter(serve_config=ServeConfig(
            workers=1, queue_capacity=8, max_batch=1, shards=2))
        router.start()
        try:
            collector = Collector()
            # Kill an idle shard outright; jobs routed anywhere must
            # still complete (the dead shard respawns on demand).
            os.kill(router._shards[0].process.pid, signal.SIGKILL)
            for k in range(4):
                path = tmp_path / f"c{k}.json"
                save_layout(DESIGN_BUILDERS["A"](rows=8, cols=8, seed=10 + k),
                            str(path))
                submit(router, collector, f"j{k}",
                       params={"layout_path": str(path), "method": "lin",
                               "score": False})
            for k in range(4):
                collector.wait_for(f"j{k}", "done", timeout=120.0)
        finally:
            router.shutdown(timeout=30.0)


class TestFleetJournalResume:
    def test_full_fleet_kill_then_restart_resumes_accepted_jobs(
            self, tmp_path, layout_file):
        journal_path = str(tmp_path / "journal.jsonl")
        sentinel = tmp_path / "hold"
        sentinel.write_text("x")
        markers = tmp_path / "markers"
        markers.mkdir()
        orig = ExecutorClass.execute

        def gated(self, request):
            (markers / f"started-{request.id}-{os.getpid()}").write_text("x")
            while sentinel.exists():
                time.sleep(0.05)
            return orig(self, request)

        ExecutorClass.execute = gated
        first = ShardRouter(
            serve_config=ServeConfig(workers=1, queue_capacity=8,
                                     max_batch=1, shards=2),
            journal_path=journal_path)
        try:
            first.start()
            collector = Collector()
            submit(first, collector, "orphan",
                   params={"layout_path": layout_file, "method": "lin",
                           "score": False})
            collector.wait_for("orphan", "accepted", timeout=30.0)
            _wait_until(lambda: list(markers.glob("started-orphan-*")),
                        message="the job to start executing")
            # Power loss: every shard SIGKILLed, nothing journalled done.
            first.kill()
        finally:
            ExecutorClass.execute = orig
            if sentinel.exists():
                sentinel.unlink()

        pending = JobJournal.read_pending(journal_path)
        assert [spec["id"] for spec in pending] == ["orphan"]

        second = ShardRouter(
            serve_config=ServeConfig(workers=1, queue_capacity=8,
                                     max_batch=1, shards=2),
            journal_path=journal_path)
        try:
            second.start()
            _wait_until(
                lambda: second.stats.snapshot()["counters"].get("completed"),
                message="the resumed job to complete")
            counters = second.stats.snapshot()["counters"]
            assert counters.get("resumed") == 1
            assert counters.get("completed") == 1
        finally:
            second.shutdown(timeout=30.0)
        # The resumed job finished, so a third recovery finds nothing.
        assert JobJournal.read_pending(journal_path) == []
