"""Tests for the in-process :class:`FillServer` (no transport).

Requests are driven through ``handle_line`` with a collecting reply
callback, which is exactly how the pipe/TCP transports call it.
"""

import threading
import time

import numpy as np
import pytest

from repro.layout import save_layout
from repro.layout.designs import DESIGN_BUILDERS
from repro.serve import (
    FillServer,
    JobJournal,
    ModelRegistry,
    ServeConfig,
    encode,
)


@pytest.fixture(scope="module")
def layout_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "a.json"
    save_layout(DESIGN_BUILDERS["A"](rows=8, cols=8, seed=3), str(path))
    return str(path)


class Collector:
    """Thread-safe reply sink with wait-for-status helpers."""

    def __init__(self):
        self.messages = []
        self._cond = threading.Condition()

    def __call__(self, message: dict) -> None:
        with self._cond:
            self.messages.append(message)
            self._cond.notify_all()

    def wait_for(self, rid: str, status: str, timeout: float = 60.0) -> dict:
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                for message in self.messages:
                    if message.get("id") == rid \
                            and message.get("status") == status:
                        return message
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise AssertionError(
                        f"no {status!r} for {rid!r}; got {self.messages}")
                self._cond.wait(remaining)

    def statuses(self, rid: str) -> list:
        with self._cond:
            return [m.get("status") for m in self.messages
                    if m.get("id") == rid]


def submit(server, collector, rid, op="fill", params=None, **extra):
    message = {"id": rid, "op": op, "params": params or {}}
    message.update(extra)
    server.handle_line(encode(message), collector)


@pytest.fixture()
def server():
    instance = FillServer(
        registry=ModelRegistry(),
        serve_config=ServeConfig(workers=2, queue_capacity=4, max_batch=1,
                                 drain_timeout_s=30.0),
    )
    instance.start()
    yield instance
    instance.shutdown(timeout=10.0)


class TestHappyPath:
    def test_fill_lin_ack_then_done(self, server, layout_file):
        collector = Collector()
        submit(server, collector, "j1",
               params={"layout_path": layout_file, "method": "lin",
                       "return_fill": True})
        done = collector.wait_for("j1", "done")
        assert collector.statuses("j1")[0] == "accepted"
        result = done["result"]
        assert result["method"] == "lin"
        assert result["total_fill"] > 0
        assert np.array(result["fill"]).shape == (3, 8, 8)
        assert "score" in result

    def test_simulate(self, server, layout_file):
        collector = Collector()
        submit(server, collector, "s1", op="simulate",
               params={"layout_path": layout_file})
        done = collector.wait_for("s1", "done")
        assert done["result"]["delta_h"] > 0
        assert done["result"]["rows"] == 8

    def test_inline_layout(self, server, layout_file):
        from repro.layout import load_layout
        from repro.layout.io import layout_to_dict
        collector = Collector()
        submit(server, collector, "j1", op="simulate",
               params={"layout": layout_to_dict(load_layout(layout_file))})
        assert collector.wait_for("j1", "done")["result"]["delta_h"] > 0

    def test_ping_stats_models(self, server):
        collector = Collector()
        submit(server, collector, "p1", op="ping")
        assert collector.wait_for("p1", "done")["result"]["pong"] is True
        submit(server, collector, "st1", op="stats")
        snapshot = collector.wait_for("st1", "done")["result"]
        assert snapshot["queue_capacity"] == 4
        assert snapshot["workers"] == 2
        assert snapshot["accepting"] is True
        assert "latency" in snapshot and "batch_histogram" in snapshot
        submit(server, collector, "m1", op="models")
        assert collector.wait_for("m1", "done")["result"]["models"] == {}


class TestRejection:
    def test_protocol_error_replies(self, server):
        collector = Collector()
        server.handle_line("this is not json", collector)
        assert collector.messages[0]["ok"] is False
        assert "not valid JSON" in collector.messages[0]["error"]

    def test_bad_method_rejected_before_queueing(self, server, layout_file):
        collector = Collector()
        submit(server, collector, "j1",
               params={"layout_path": layout_file, "method": "magic"})
        rejected = collector.wait_for("j1", "rejected", timeout=5.0)
        assert "magic" in rejected["error"]

    def test_missing_layout_params_rejected(self, server):
        collector = Collector()
        submit(server, collector, "j1", params={"method": "lin"})
        collector.wait_for("j1", "rejected", timeout=5.0)


class BlockingExecute:
    """Patches ``_execute`` so workers block until released."""

    def __init__(self, server):
        self.release = threading.Event()
        self.entered = threading.Event()
        self._orig = server._execute

        def blocked(request):
            self.entered.set()
            assert self.release.wait(timeout=60.0)
            return self._orig(request)

        server._execute = blocked


class TestBackpressure:
    def test_queue_full_rejects(self, layout_file):
        server = FillServer(serve_config=ServeConfig(
            workers=1, queue_capacity=1, max_batch=1))
        blocker = BlockingExecute(server)
        server.start()
        try:
            collector = Collector()
            params = {"layout_path": layout_file, "method": "lin",
                      "score": False}
            submit(server, collector, "running", params=params)
            assert blocker.entered.wait(timeout=10.0)  # worker is busy
            submit(server, collector, "queued", params=params)
            collector.wait_for("queued", "accepted", timeout=5.0)
            submit(server, collector, "overflow", params=params)
            rejected = collector.wait_for("overflow", "rejected", timeout=5.0)
            assert "queue full" in rejected["error"]
            blocker.release.set()
            collector.wait_for("running", "done")
            collector.wait_for("queued", "done")
        finally:
            blocker.release.set()
            server.shutdown(timeout=10.0)


class TestTimeoutAndCancel:
    def test_queued_job_times_out(self, layout_file):
        server = FillServer(serve_config=ServeConfig(
            workers=1, queue_capacity=4, max_batch=1))
        blocker = BlockingExecute(server)
        server.start()
        try:
            collector = Collector()
            params = {"layout_path": layout_file, "method": "lin",
                      "score": False}
            submit(server, collector, "running", params=params)
            assert blocker.entered.wait(timeout=10.0)
            submit(server, collector, "hurried", params=params,
                   timeout_s=0.05)
            collector.wait_for("hurried", "accepted", timeout=5.0)
            time.sleep(0.1)  # deadline passes while queued
            blocker.release.set()
            timed_out = collector.wait_for("hurried", "timeout")
            assert timed_out["ok"] is False
            collector.wait_for("running", "done")
        finally:
            blocker.release.set()
            server.shutdown(timeout=10.0)

    def test_cancel_pending_job(self, layout_file):
        server = FillServer(serve_config=ServeConfig(
            workers=1, queue_capacity=4, max_batch=1))
        blocker = BlockingExecute(server)
        server.start()
        try:
            collector = Collector()
            params = {"layout_path": layout_file, "method": "lin",
                      "score": False}
            submit(server, collector, "running", params=params)
            assert blocker.entered.wait(timeout=10.0)
            submit(server, collector, "victim", params=params)
            collector.wait_for("victim", "accepted", timeout=5.0)
            submit(server, collector, "c1", op="cancel",
                   params={"job_id": "victim"})
            verdict = collector.wait_for("c1", "done", timeout=5.0)
            assert verdict["result"]["cancelled"] is True
            cancelled = collector.wait_for("victim", "cancelled", timeout=5.0)
            assert cancelled["ok"] is False
            blocker.release.set()
            collector.wait_for("running", "done")
        finally:
            blocker.release.set()
            server.shutdown(timeout=10.0)

    def test_cancel_unknown_job(self, server):
        collector = Collector()
        submit(server, collector, "c1", op="cancel",
               params={"job_id": "ghost"})
        verdict = collector.wait_for("c1", "done", timeout=5.0)
        assert verdict["result"]["cancelled"] is False


class TestJournalResume:
    def test_accepted_jobs_survive_crash(self, tmp_path, layout_file):
        journal_path = str(tmp_path / "journal.jsonl")
        params = {"layout_path": layout_file, "method": "lin",
                  "score": False}

        # First server: accept a job but "crash" before executing it
        # (workers never started, process state simply abandoned).
        first = FillServer(
            serve_config=ServeConfig(workers=1, queue_capacity=4,
                                     max_batch=1),
            journal_path=journal_path,
        )
        collector = Collector()
        submit(first, collector, "orphan", params=params)
        collector.wait_for("orphan", "accepted", timeout=5.0)
        pending = JobJournal.read_pending(journal_path)
        assert [spec["id"] for spec in pending] == ["orphan"]

        # Second server on the same journal path resumes the job.
        second = FillServer(
            serve_config=ServeConfig(workers=1, queue_capacity=4,
                                     max_batch=1),
            journal_path=journal_path,
        )
        try:
            second.start()
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                counters = second.stats.snapshot()["counters"]
                if counters.get("completed"):
                    break
                time.sleep(0.05)
            counters = second.stats.snapshot()["counters"]
            assert counters.get("resumed") == 1
            assert counters.get("completed") == 1
        finally:
            second.shutdown(timeout=10.0)
        # the resumed job finished, so a third recovery finds nothing
        assert JobJournal.read_pending(journal_path) == []


class TestShutdown:
    def test_drain_finishes_queued_work(self, layout_file):
        server = FillServer(serve_config=ServeConfig(
            workers=2, queue_capacity=8, max_batch=1))
        server.start()
        collector = Collector()
        for k in range(4):
            submit(server, collector, f"j{k}",
                   params={"layout_path": layout_file, "method": "lin",
                           "score": False})
        server.shutdown(drain=True, timeout=60.0)
        for k in range(4):
            collector.wait_for(f"j{k}", "done", timeout=1.0)
        assert server.shutdown_complete

    def test_no_drain_cancels_queued_work(self, layout_file):
        server = FillServer(serve_config=ServeConfig(
            workers=1, queue_capacity=8, max_batch=1))
        blocker = BlockingExecute(server)
        server.start()
        collector = Collector()
        params = {"layout_path": layout_file, "method": "lin",
                  "score": False}
        submit(server, collector, "running", params=params)
        assert blocker.entered.wait(timeout=10.0)
        submit(server, collector, "doomed", params=params)
        collector.wait_for("doomed", "accepted", timeout=5.0)

        shutdown_thread = threading.Thread(
            target=lambda: server.shutdown(drain=False, timeout=30.0))
        shutdown_thread.start()
        cancelled = collector.wait_for("doomed", "cancelled", timeout=10.0)
        assert cancelled["ok"] is False
        blocker.release.set()
        shutdown_thread.join(timeout=30.0)
        assert not shutdown_thread.is_alive()
        collector.wait_for("running", "done", timeout=5.0)

    def test_rejects_after_shutdown(self, layout_file):
        server = FillServer(serve_config=ServeConfig(
            workers=1, queue_capacity=4, max_batch=1))
        server.start()
        server.shutdown(timeout=10.0)
        collector = Collector()
        submit(server, collector, "late",
               params={"layout_path": layout_file, "method": "lin"})
        rejected = collector.wait_for("late", "rejected", timeout=5.0)
        assert "shutting down" in rejected["error"]
