"""Tests for coalescing concurrent simulate jobs into batched polishes.

The fidelity contract is the strongest in the serving layer: the batched
CMP simulator is **bitwise identical** to looping ``simulate``, so a
coalesced simulate job must report exactly the numbers a dedicated
server would.
"""

import threading
import time

import numpy as np
import pytest

from repro.cmp import CmpSimulator, DEFAULT_PROCESS, ProcessParams
from repro.core.scoring import planarity_metrics
from repro.layout import apply_fill, make_design_a, make_design_b
from repro.layout.io import layout_to_dict
from repro.serve import FillServer, ServeConfig, ServeStats, SimulateBatcher
from repro.serve.protocol import encode

RESULT_FIELDS = ("height", "dishing", "erosion", "pressure", "step_height")


def concurrent_simulate(batcher, jobs):
    """Submit (features, simulator) jobs from one thread each."""
    results = [None] * len(jobs)
    errors = []

    def worker(k):
        try:
            results[k] = batcher.simulate(*jobs[k])
        except BaseException as exc:  # surfaced by the caller
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(k,))
               for k in range(len(jobs))]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    if errors:
        raise errors[0]
    return results


@pytest.fixture()
def feature_stacks():
    layouts = [make_design_a(rows=6, cols=6), make_design_b(rows=6, cols=6),
               make_design_a(rows=6, cols=6)]
    rng = np.random.default_rng(11)
    return [apply_fill(lay, rng.uniform(0.0, 0.8) * lay.slack_stack())
            for lay in layouts]


class TestSimulateBatcherFidelity:
    def test_coalesced_bitwise_equals_solo(self, feature_stacks):
        sim = CmpSimulator()
        batcher = SimulateBatcher(max_batch=len(feature_stacks),
                                  max_delay_s=30.0)
        try:
            got = concurrent_simulate(
                batcher, [(f, sim) for f in feature_stacks])
        finally:
            batcher.close()
        for features, res in zip(feature_stacks, got):
            ref = sim.simulate(features)
            for name in RESULT_FIELDS:
                np.testing.assert_array_equal(
                    getattr(res, name), getattr(ref, name), err_msg=name)

    def test_passthrough_when_disabled(self, feature_stacks):
        sim = CmpSimulator()
        batcher = SimulateBatcher(max_batch=1)
        res = batcher.simulate(feature_stacks[0], sim)
        ref = sim.simulate(feature_stacks[0])
        np.testing.assert_array_equal(res.height, ref.height)
        batcher.close()

    def test_simulate_after_close_still_works(self, feature_stacks):
        sim = CmpSimulator()
        batcher = SimulateBatcher(max_batch=4, max_delay_s=0.01)
        batcher.close()
        res = batcher.simulate(feature_stacks[0], sim)
        np.testing.assert_array_equal(
            res.height, sim.simulate(feature_stacks[0]).height)


class TestSimulateBatcherGrouping:
    def test_different_physics_never_coalesce(self, feature_stacks):
        """Jobs only share a polish when the process params match."""
        stats = ServeStats()
        fast = CmpSimulator(DEFAULT_PROCESS.scaled(polish_time_s=30.0))
        slow = CmpSimulator(DEFAULT_PROCESS.scaled(polish_time_s=60.0))
        batcher = SimulateBatcher(max_batch=2, max_delay_s=0.05,
                                  stats=stats)
        try:
            concurrent_simulate(batcher, [(feature_stacks[0], fast),
                                          (feature_stacks[0], slow)])
        finally:
            batcher.close()
        assert stats.snapshot()["sim_batch_histogram"] == {"1": 2}

    def test_equal_params_coalesce_across_instances(self, feature_stacks):
        """ProcessParams is frozen: two separately built simulators with
        the same calibration share one group."""
        stats = ServeStats()
        a = CmpSimulator(ProcessParams(polish_time_s=30.0))
        b = CmpSimulator(ProcessParams(polish_time_s=30.0))
        batcher = SimulateBatcher(max_batch=2, max_delay_s=30.0,
                                  stats=stats)
        try:
            concurrent_simulate(batcher, [(feature_stacks[0], a),
                                          (feature_stacks[1], b)])
        finally:
            batcher.close()
        assert stats.snapshot()["sim_batch_histogram"] == {"2": 1}

    def test_close_drains_parked_requests(self, feature_stacks):
        sim = CmpSimulator()
        batcher = SimulateBatcher(max_batch=64, max_delay_s=300.0)
        holder = {}
        thread = threading.Thread(
            target=lambda: holder.setdefault(
                "res", batcher.simulate(feature_stacks[0], sim)))
        thread.start()
        while not batcher._pending:  # wait until parked
            time.sleep(0.001)
        batcher.close()
        thread.join(timeout=30)
        assert not thread.is_alive()
        np.testing.assert_array_equal(
            holder["res"].height, sim.simulate(feature_stacks[0]).height)

    def test_errors_propagate_to_every_waiter(self, feature_stacks):
        class ExplodingSimulator:
            params = DEFAULT_PROCESS
            window_um = 100.0
            dtype = None

            def simulate_batch(self, features):
                raise RuntimeError("boom")

        boom = ExplodingSimulator()
        batcher = SimulateBatcher(max_batch=2, max_delay_s=30.0)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                concurrent_simulate(batcher, [(feature_stacks[0], boom),
                                              (feature_stacks[2], boom)])
        finally:
            batcher.close()

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            SimulateBatcher(max_batch=0)
        with pytest.raises(ValueError):
            SimulateBatcher(max_delay_s=-1.0)


class TestServerSimulateCoalescing:
    def test_concurrent_jobs_coalesce_and_match_solo(self):
        """Concurrent simulate jobs through the full server coalesce into
        one batched polish and report solo-identical numbers."""
        layout = make_design_a(rows=6, cols=6)
        spec = layout_to_dict(layout)
        server = FillServer(serve_config=ServeConfig(
            workers=4, max_batch=4, flush_ms=100.0))
        server.start()
        results = {}
        lock = threading.Lock()

        def reply_for(jid):
            def reply(message):
                if message.get("status") in ("done", "error", "timeout"):
                    with lock:
                        results[jid] = message
            return reply

        try:
            for k in range(4):
                line = encode({"op": "simulate", "id": f"s{k}",
                               "params": {"layout": spec}})
                server.handle_line(line, reply_for(f"s{k}"))
            deadline = time.monotonic() + 60
            while len(results) < 4 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert len(results) == 4
            assert all(r["status"] == "done" for r in results.values())
            ref = CmpSimulator().simulate_layout(layout)
            delta_h, sigma, line_dev, outliers = planarity_metrics(ref.height)
            for message in results.values():
                res = message["result"]
                assert res["delta_h"] == delta_h
                assert res["sigma"] == sigma
                assert res["mean_dishing"] == float(ref.dishing.mean())
                assert res["mean_erosion"] == float(ref.erosion.mean())
            histogram = server.stats_snapshot()["sim_batch_histogram"]
            # With 4 workers racing the flusher the group may split, but
            # every flush lands in the histogram.
            assert sum(int(k) * v for k, v in histogram.items()) == 4
        finally:
            server.shutdown()
