"""Batched network evaluation vs the sequential per-fill path.

``evaluate_batch`` stacks K fill vectors into one network pass; every
row must reproduce ``evaluate`` on the same fill to machine precision
(BatchNorm runs in eval mode, so samples never interact).
"""

import numpy as np
import pytest

from repro.layout import make_design_a
from repro.nn import Tensor, UNet
from repro.surrogate import (
    NUM_FEATURE_CHANNELS,
    CmpNeuralNetwork,
    HeightNormalizer,
    PlanarityWeights,
    planarity_score,
    planarity_score_batch,
)

WEIGHTS = PlanarityWeights(0.2, 100.0, 0.2, 1000.0, 0.15, 10.0)


@pytest.fixture(scope="module")
def net():
    layout = make_design_a(rows=8, cols=8)
    unet = UNet(in_channels=NUM_FEATURE_CHANNELS, out_channels=1,
                base_channels=4, depth=1, rng=0)
    return CmpNeuralNetwork(layout, unet, HeightNormalizer(mean=6000.0, std=40.0))


@pytest.fixture(scope="module")
def fills(net):
    rng = np.random.default_rng(5)
    slack = net.layout.slack_stack()
    return rng.random((3, *slack.shape)) * slack


class TestEvaluateBatch:
    def test_matches_sequential(self, net, fills):
        batch = net.evaluate_batch(fills, WEIGHTS)
        for k in range(fills.shape[0]):
            single = net.evaluate(fills[k], WEIGHTS)
            np.testing.assert_allclose(batch.s_plan[k], single.s_plan,
                                       rtol=0, atol=1e-10)
            np.testing.assert_allclose(batch.heights[k], single.heights,
                                       rtol=0, atol=1e-10)
            np.testing.assert_allclose(batch.gradient[k], single.gradient,
                                       rtol=0, atol=1e-10)
            bd, sd = batch.breakdowns[k], single.breakdown
            assert bd.sigma == pytest.approx(sd.sigma, abs=1e-10)
            assert bd.line == pytest.approx(sd.line, abs=1e-10)
            assert bd.outlier == pytest.approx(sd.outlier, abs=1e-10)
            assert bd.s_plan == pytest.approx(sd.s_plan, abs=1e-10)

    def test_grad_mask_zeroes_unrequested_rows(self, net, fills):
        mask = np.array([True, False, True])
        batch = net.evaluate_batch(fills, WEIGHTS, grad_mask=mask)
        assert np.all(batch.gradient[1] == 0.0)
        for k in (0, 2):
            single = net.evaluate(fills[k], WEIGHTS)
            np.testing.assert_allclose(batch.gradient[k], single.gradient,
                                       rtol=0, atol=1e-10)
        # Masked rows still get their (forward-only) scores.
        full = net.evaluate_batch(fills, WEIGHTS, want_grad=False)
        np.testing.assert_allclose(batch.s_plan, full.s_plan, rtol=0, atol=0)

    def test_forward_only(self, net, fills):
        batch = net.evaluate_batch(fills, WEIGHTS, want_grad=False)
        assert batch.gradient is None
        assert batch.s_plan.shape == (3,)
        assert batch.heights.shape == fills.shape

    def test_rejects_unstacked_fill(self, net):
        with pytest.raises(ValueError):
            net.evaluate_batch(np.zeros(net.layout.shape), WEIGHTS)

    def test_rejects_bad_mask_shape(self, net, fills):
        with pytest.raises(ValueError):
            net.evaluate_batch(fills, WEIGHTS, grad_mask=np.array([True, False]))


class TestPlanarityScoreBatch:
    def test_matches_per_sample_score(self):
        rng = np.random.default_rng(0)
        heights = rng.normal(6000.0, 30.0, size=(4, 2, 6, 6))
        batched, breakdowns = planarity_score_batch(Tensor(heights), WEIGHTS)
        assert batched.data.shape == (4,)
        assert len(breakdowns) == 4
        for k in range(4):
            single, bd = planarity_score(Tensor(heights[k]), WEIGHTS)
            assert float(batched.data[k]) == pytest.approx(
                float(single.data), abs=1e-10)
            assert breakdowns[k].s_plan == pytest.approx(bd.s_plan, abs=1e-10)
