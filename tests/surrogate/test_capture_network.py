"""Captured-graph execution behind the surrogate entry points.

``CmpNeuralNetwork`` with ``capture=True`` (the default) must be
indistinguishable — *bitwise*, not approximately — from ``capture=False``
on every entry point and in both precision modes, while allocating no new
large arrays per call once a plan is warm.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro.layout import make_design_a
from repro.nn import UNet, compute_dtype
from repro.surrogate import (
    NUM_FEATURE_CHANNELS,
    CmpNeuralNetwork,
    HeightNormalizer,
    PlanarityWeights,
)

GRID = 12
WEIGHTS = PlanarityWeights(1.0, 20000.0, 1.0, 20000.0, 1.0, 20000.0)


def build_net(layout, capture):
    unet = UNet(NUM_FEATURE_CHANNELS, 1, base_channels=4, depth=1, rng=0)
    return CmpNeuralNetwork(
        layout, unet, HeightNormalizer(2500.0, 300.0), capture=capture)


@pytest.fixture(scope="module")
def layout():
    return make_design_a(rows=GRID, cols=GRID, seed=2)


@pytest.fixture()
def nets(layout):
    return build_net(layout, True), build_net(layout, False)


def fills_for(layout, count, seed=0, batch=None):
    rng = np.random.default_rng(seed)
    slack = layout.slack_stack()
    shape = slack.shape if batch is None else (batch, *slack.shape)
    return [rng.random(shape) * slack for _ in range(count)]


def assert_same_eval(a, b):
    assert a.s_plan == b.s_plan
    assert np.array_equal(a.heights, b.heights)
    if a.gradient is None:
        assert b.gradient is None
    else:
        assert np.array_equal(a.gradient, b.gradient)
    assert a.breakdown == b.breakdown


class TestBitwiseParity:
    def test_evaluate(self, nets):
        captured, eager = nets
        for fill in fills_for(captured.layout, 4, seed=1):
            assert_same_eval(captured.evaluate(fill, WEIGHTS),
                             eager.evaluate(fill, WEIGHTS))
        stats = captured.capture_stats()
        assert stats["trace"] == 1
        assert stats["replay"] == 3

    def test_evaluate_no_grad(self, nets):
        captured, eager = nets
        for fill in fills_for(captured.layout, 3, seed=2):
            a = captured.evaluate(fill, WEIGHTS, want_grad=False)
            b = eager.evaluate(fill, WEIGHTS, want_grad=False)
            assert_same_eval(a, b)
            assert a.gradient is None

    def test_evaluate_batch(self, nets):
        captured, eager = nets
        for fills in fills_for(captured.layout, 3, seed=3, batch=3):
            a = captured.evaluate_batch(fills, WEIGHTS)
            b = eager.evaluate_batch(fills, WEIGHTS)
            assert np.array_equal(a.s_plan, b.s_plan)
            assert np.array_equal(a.heights, b.heights)
            assert np.array_equal(a.gradient, b.gradient)
            assert a.breakdowns == b.breakdowns

    def test_evaluate_batch_grad_mask(self, nets):
        captured, eager = nets
        mask = np.array([True, False, True])
        for fills in fills_for(captured.layout, 2, seed=4, batch=3):
            a = captured.evaluate_batch(fills, WEIGHTS, grad_mask=mask)
            b = eager.evaluate_batch(fills, WEIGHTS, grad_mask=mask)
            assert np.array_equal(a.gradient, b.gradient)
            assert not a.gradient[1].any()

    def test_evaluate_region(self, nets):
        captured, eager = nets
        base_fill, trial0 = fills_for(captured.layout, 2, seed=5)
        base = eager.predict_heights(base_fill)
        active = np.zeros((GRID, GRID), bool)
        active[4:7, 5:8] = True
        region = captured.plan_region(active)
        for k in range(3):
            trial = base_fill.copy()
            trial[:, 4:7, 5:8] = trial0[:, 4:7, 5:8] * (0.5 + 0.1 * k)
            a = captured.evaluate_region(trial, region, base, WEIGHTS)
            b = eager.evaluate_region(trial, region, base, WEIGHTS)
            assert_same_eval(a, b)

    def test_float32_mode(self, layout):
        results = []
        for capture in (True, False):
            net = build_net(layout, capture)
            net.unet.to_dtype(np.float32)
            with compute_dtype(np.float32):
                fills = fills_for(layout, 3, seed=6)
                results.append([net.evaluate(f, WEIGHTS) for f in fills])
        for a, b in zip(*results):
            assert_same_eval(a, b)


class TestPlanLifecycle:
    def test_distinct_signatures_get_distinct_plans(self, layout):
        net = build_net(layout, True)
        (fill,) = fills_for(layout, 1, seed=7)
        (batch,) = fills_for(layout, 1, seed=7, batch=2)
        net.evaluate(fill, WEIGHTS)
        net.evaluate_batch(batch, WEIGHTS)
        stats = net.capture_stats()
        assert stats["trace"] == 2
        assert len(stats["plans"]) == 2
        assert stats["arena_bytes"] > 0

    def test_state_version_invalidates_plans(self, layout):
        net = build_net(layout, True)
        (fill,) = fills_for(layout, 1, seed=8)
        before = net.evaluate(fill, WEIGHTS)
        state = net.unet.state_dict()
        for name in state:
            if not name.startswith("buffer:"):
                state[name] = state[name] * 0.75
        net.unet.load_state_dict(state)
        after = net.evaluate(fill, WEIGHTS)
        # New weights, new key -> a second trace, not a stale replay.
        assert net.capture_stats()["trace"] == 2
        fresh = build_net(layout, False)
        fresh.unet.load_state_dict(state)
        assert after.s_plan == fresh.evaluate(fill, WEIGHTS).s_plan
        assert after.s_plan != before.s_plan

    def test_capture_disabled_uses_eager(self, layout):
        net = build_net(layout, False)
        (fill,) = fills_for(layout, 1, seed=9)
        net.evaluate(fill, WEIGHTS)
        net.evaluate(fill, WEIGHTS)
        stats = net.capture_stats()
        assert stats["trace"] == 0 and stats["replay"] == 0

    def test_env_knob_controls_default(self, layout, monkeypatch):
        monkeypatch.setenv("REPRO_CAPTURE", "0")
        assert build_net(layout, None).capture is False
        monkeypatch.setenv("REPRO_CAPTURE", "1")
        assert build_net(layout, None).capture is True

    def test_training_mode_bypasses_capture(self, layout):
        net = build_net(layout, True)
        net.unet.train()
        (fill,) = fills_for(layout, 1, seed=10)
        net.evaluate(fill, WEIGHTS)
        assert net.capture_stats()["trace"] == 0
        net.unet.eval()
        net.evaluate(fill, WEIGHTS)
        assert net.capture_stats()["trace"] == 1

    def test_plan_lru_bounded(self, layout, monkeypatch):
        monkeypatch.setenv("REPRO_CAPTURE_PLANS", "2")
        net = build_net(layout, True)
        for k in (1, 2, 3):
            (batch,) = fills_for(layout, 1, seed=11, batch=k)
            net.evaluate_batch(batch, WEIGHTS)
        stats = net.capture_stats()
        assert stats["trace"] == 3
        assert len(stats["plans"]) == 2  # oldest evicted


class TestAllocationRegression:
    def test_replay_allocates_no_new_large_arrays(self, layout):
        net = build_net(layout, True)
        fills = fills_for(layout, 6, seed=12)
        net.evaluate(fills[0], WEIGHTS)  # trace
        net.evaluate(fills[1], WEIGHTS)  # warm replay
        assert net.capture_stats()["replay"] == 1

        gc.collect()
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for fill in fills[2:]:
            result = net.evaluate(fill, WEIGHTS)
        del result
        gc.collect()
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()

        grown = [
            d for d in after.compare_to(before, "lineno")
            if d.size_diff > 32 * 1024
        ]
        assert not grown, [str(d) for d in grown]
        assert net.capture_stats()["replay"] == 5
