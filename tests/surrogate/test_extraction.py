"""Tests for the differentiable extraction layer."""

import numpy as np
import pytest

from repro.layout import apply_fill, make_design_a
from repro.nn import Tensor
from repro.surrogate import (
    NUM_FEATURE_CHANNELS,
    ExtractionConstants,
    extract_parameter_matrix,
    extract_parameter_matrix_numpy,
)
from repro.surrogate.extraction import DEPTH_SCALE, PERIMETER_SCALE, WIDTH_SCALE

from ..nn.gradcheck import check_grad


@pytest.fixture
def layout():
    return make_design_a(rows=8, cols=8)


@pytest.fixture
def consts(layout):
    return ExtractionConstants.from_layout(layout)


class TestForward:
    def test_output_shape(self, layout, consts):
        fill = Tensor(np.zeros(layout.shape))
        out = extract_parameter_matrix(fill, consts)
        L, N, M = layout.shape
        assert out.shape == (L, NUM_FEATURE_CHANNELS, N, M)

    def test_matches_apply_fill(self, layout, consts):
        """The autodiff extraction must agree with the reference
        numpy feature update in repro.layout.layout.apply_fill."""
        rng = np.random.default_rng(0)
        fill = rng.random(layout.shape) * layout.slack_stack()
        out = extract_parameter_matrix_numpy(fill, consts)
        ref = apply_fill(layout, fill)
        np.testing.assert_allclose(out[:, 0], ref.density, rtol=1e-10)
        np.testing.assert_allclose(out[:, 1] * PERIMETER_SCALE, ref.perimeter, rtol=1e-10)
        np.testing.assert_allclose(out[:, 2] * WIDTH_SCALE, ref.wire_width, rtol=1e-6)
        np.testing.assert_allclose(out[:, 3] * DEPTH_SCALE, ref.trench_depth, rtol=1e-10)

    def test_zero_fill_reproduces_layout(self, layout, consts):
        out = extract_parameter_matrix_numpy(np.zeros(layout.shape), consts)
        np.testing.assert_allclose(out[:, 0], layout.density_stack(), rtol=1e-10)
        np.testing.assert_allclose(out[:, 2] * WIDTH_SCALE, layout.width_stack(),
                                   rtol=1e-6)

    def test_empty_window_width_finite(self):
        lay = make_design_a(rows=4, cols=4)
        lay.layers[0].density[:, :] = 0.0
        lay.layers[0].wire_perimeter[:, :] = 0.0
        consts = ExtractionConstants.from_layout(lay)
        out = extract_parameter_matrix_numpy(np.zeros(lay.shape), consts)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[0, 2] * WIDTH_SCALE,
                                   lay.layers[0].wire_width, rtol=1e-6)

    def test_shape_mismatch_rejected(self, consts):
        with pytest.raises(ValueError):
            extract_parameter_matrix(Tensor(np.zeros((1, 2, 2))), consts)


class TestGradient:
    def test_density_gradient_is_inverse_area(self, layout, consts):
        fill = Tensor(np.zeros(layout.shape), requires_grad=True)
        out = extract_parameter_matrix(fill, consts)
        out[:, 0].sum().backward()
        np.testing.assert_allclose(
            fill.grad, np.full(layout.shape, 1.0 / layout.grid.window_area)
        )

    def test_full_matrix_gradcheck(self, layout, consts):
        rng = np.random.default_rng(1)
        base = rng.random(layout.shape) * layout.slack_stack() * 0.5
        # Small slice for FD affordability.
        small = base[:, :3, :3]
        small_consts = ExtractionConstants(
            density=consts.density[:, :3, :3],
            perimeter=consts.perimeter[:, :3, :3],
            wire_width=consts.wire_width[:, :3, :3],
            trench_depth=consts.trench_depth[:, :3, :3],
            window_area=consts.window_area,
        )
        check_grad(
            lambda t: extract_parameter_matrix(t, small_consts),
            small, eps=1e-3, rtol=1e-4, atol=1e-8,
        )

    def test_trench_channel_has_zero_gradient(self, layout, consts):
        fill = Tensor(np.zeros(layout.shape), requires_grad=True)
        out = extract_parameter_matrix(fill, consts)
        out[:, 3].sum().backward()
        np.testing.assert_allclose(fill.grad, 0.0)
