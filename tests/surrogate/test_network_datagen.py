"""Tests for the CMP neural network pipeline, dataset and training."""

import numpy as np
import pytest

from repro.cmp import CmpSimulator
from repro.layout import make_design_a, make_design_b
from repro.nn import UNet
from repro.surrogate import (
    NUM_FEATURE_CHANNELS,
    CmpNeuralNetwork,
    HeightNormalizer,
    PlanarityWeights,
    TrainConfig,
    build_dataset,
    evaluate_accuracy,
    pretrain_surrogate,
    train_unet,
)


@pytest.fixture(scope="module")
def small_sources():
    return [make_design_a(rows=10, cols=10), make_design_b(rows=10, cols=10)]


@pytest.fixture(scope="module")
def dataset(small_sources):
    return build_dataset(small_sources, count=6, rows=8, cols=8, seed=0)


@pytest.fixture(scope="module")
def trained(small_sources, dataset):
    unet = UNet(in_channels=NUM_FEATURE_CHANNELS, out_channels=1,
                base_channels=4, depth=1, rng=0)
    history = train_unet(unet, dataset, TrainConfig(epochs=5, batch_size=4))
    return unet, history


class TestHeightNormalizer:
    def test_roundtrip(self):
        norm = HeightNormalizer(mean=10.0, std=2.0)
        x = np.array([8.0, 12.0])
        np.testing.assert_allclose(norm.denormalize_array(norm.normalize(x)), x)

    def test_fit(self):
        data = np.array([1.0, 3.0])
        norm = HeightNormalizer.fit(data)
        assert norm.mean == 2.0
        assert norm.std == 1.0

    def test_fit_constant_data(self):
        norm = HeightNormalizer.fit(np.full(5, 7.0))
        assert norm.std == 1.0  # degenerate guarded

    def test_dict_roundtrip(self):
        norm = HeightNormalizer(3.0, 1.5)
        assert HeightNormalizer.from_dict(norm.to_dict()) == norm

    def test_invalid_std(self):
        with pytest.raises(ValueError):
            HeightNormalizer(0.0, 0.0)


class TestDataset:
    def test_shapes(self, dataset):
        n = len(dataset)
        assert n == 6
        assert dataset.inputs.shape == (6, 3, NUM_FEATURE_CHANNELS, 8, 8)
        assert dataset.targets.shape == (6, 3, 1, 8, 8)
        assert dataset.flat_inputs().shape == (18, NUM_FEATURE_CHANNELS, 8, 8)

    def test_targets_normalised(self, dataset):
        assert abs(dataset.targets.mean()) < 0.2
        assert dataset.targets.std() == pytest.approx(1.0, rel=0.2)

    def test_split(self, dataset):
        train, test = dataset.split(test_fraction=0.3, seed=1)
        assert len(train) + len(test) == len(dataset)
        assert len(test) >= 1
        assert train.normalizer is dataset.normalizer

    def test_split_bad_fraction(self, dataset):
        with pytest.raises(ValueError):
            dataset.split(test_fraction=0.0)

    def test_reused_normalizer(self, small_sources, dataset):
        other = build_dataset(small_sources, count=2, rows=8, cols=8, seed=9,
                              normalizer=dataset.normalizer)
        assert other.normalizer is dataset.normalizer

    def test_count_positive(self, small_sources):
        with pytest.raises(ValueError):
            build_dataset(small_sources, count=0, rows=8, cols=8)

    def test_deterministic(self, small_sources):
        d1 = build_dataset(small_sources, count=2, rows=8, cols=8, seed=3)
        d2 = build_dataset(small_sources, count=2, rows=8, cols=8, seed=3)
        np.testing.assert_array_equal(d1.inputs, d2.inputs)
        np.testing.assert_array_equal(d1.targets, d2.targets)


class TestTraining:
    def test_loss_decreases(self, trained):
        _, history = trained
        assert history.losses[-1] < history.losses[0]
        assert history.final_loss == history.losses[-1]

    def test_accuracy_report(self, trained, dataset):
        unet, _ = trained
        report = evaluate_accuracy(unet, dataset)
        assert 0.0 <= report.mean_relative_error < 0.5
        assert report.max_window_relative_error >= report.mean_relative_error
        assert report.per_window_error.shape == (8, 8)

    def test_error_histogram_and_fraction(self, trained, dataset):
        unet, _ = trained
        report = evaluate_accuracy(unet, dataset)
        counts, edges = report.error_histogram(bins=10)
        assert counts.sum() == 64
        assert report.fraction_below(np.inf) == 1.0
        assert report.fraction_below(0.0) == 0.0

    def test_invalid_config(self, dataset):
        unet = UNet(in_channels=NUM_FEATURE_CHANNELS, base_channels=2, depth=1, rng=0)
        with pytest.raises(ValueError):
            train_unet(unet, dataset, TrainConfig(epochs=0))


class TestCmpNeuralNetwork:
    def test_evaluate_returns_gradient(self, small_sources, trained, dataset):
        unet, _ = trained
        layout = make_design_a(rows=8, cols=8)
        net = CmpNeuralNetwork(layout, unet, dataset.normalizer)
        w = PlanarityWeights(0.2, 100.0, 0.2, 1000.0, 0.15, 10.0)
        ev = net.evaluate(np.zeros(layout.shape), w)
        assert ev.gradient is not None
        assert ev.gradient.shape == layout.shape
        assert np.all(np.isfinite(ev.gradient))
        assert ev.heights.shape == layout.shape

    def test_forward_only(self, trained, dataset):
        unet, _ = trained
        layout = make_design_a(rows=8, cols=8)
        net = CmpNeuralNetwork(layout, unet, dataset.normalizer)
        w = PlanarityWeights(0.2, 100.0, 0.2, 1000.0, 0.15, 10.0)
        ev = net.evaluate(np.zeros(layout.shape), w, want_grad=False)
        assert ev.gradient is None

    def test_gradient_matches_finite_difference(self, trained, dataset):
        """The headline claim: backprop == numerical gradient (through the
        same network), at a fraction of the cost."""
        unet, _ = trained
        layout = make_design_a(rows=8, cols=8)
        net = CmpNeuralNetwork(layout, unet, dataset.normalizer)
        w = PlanarityWeights(0.2, 100.0, 0.2, 1000.0, 0.15, 10.0)
        x0 = 0.3 * layout.slack_stack()
        ev = net.evaluate(x0, w)
        rng = np.random.default_rng(0)
        flat = np.array([rng.integers(0, x0.size) for _ in range(4)])
        eps = 1.0
        for k in flat:
            probe = x0.ravel().copy()
            probe[k] += eps
            hi = net.evaluate(probe.reshape(x0.shape), w, want_grad=False).s_plan
            probe[k] -= 2 * eps
            lo = net.evaluate(probe.reshape(x0.shape), w, want_grad=False).s_plan
            fd = (hi - lo) / (2 * eps)
            assert ev.gradient.ravel()[k] == pytest.approx(fd, rel=1e-3, abs=1e-9)

    def test_predict_heights_default_zero_fill(self, trained, dataset):
        unet, _ = trained
        layout = make_design_a(rows=8, cols=8)
        net = CmpNeuralNetwork(layout, unet, dataset.normalizer)
        h0 = net.predict_heights()
        h1 = net.predict_heights(np.zeros(layout.shape))
        np.testing.assert_allclose(h0, h1)


class TestPretrainPipeline:
    def test_pretrain_surrogate_accuracy(self, small_sources):
        layout = make_design_a(rows=8, cols=8)
        net, history, report = pretrain_surrogate(
            small_sources, layout, sample_count=8, tile_rows=8, tile_cols=8,
            base_channels=4, depth=1, config=TrainConfig(epochs=8, batch_size=4),
            seed=1,
        )
        assert history.losses[-1] < history.losses[0]
        # Loose bound: a briefly-trained surrogate should still be within
        # a few percent of the simulator on its own distribution.
        assert report.mean_relative_error < 0.10

    def test_extension_ability_protocol(self, small_sources):
        """Paper SS V-A: train on two designs, test on a third."""
        sim = CmpSimulator()
        train_set = build_dataset(small_sources, count=6, rows=8, cols=8,
                                  simulator=sim, seed=0)
        third = make_design_a(rows=10, cols=10, seed=99)
        ext_set = build_dataset([third], count=3, rows=8, cols=8,
                                simulator=sim, seed=1,
                                normalizer=train_set.normalizer)
        unet = UNet(in_channels=NUM_FEATURE_CHANNELS, base_channels=4,
                    depth=1, rng=0)
        train_unet(unet, train_set, TrainConfig(epochs=5, batch_size=4))
        report = evaluate_accuracy(unet, ext_set)
        assert np.isfinite(report.mean_relative_error)
