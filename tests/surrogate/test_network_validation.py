"""Regression tests for the network's fill/halo validation contract.

Two silent-failure modes fixed by the ECO PR:

* ``predict_heights_tiled`` used to fall back to a **zero halo** when the
  bound model did not expose ``receptive_field_radius`` — voiding the
  tiled-exactness guarantee without a word.  It must raise instead.
* ``predict_heights`` defaulted/validated fills against
  ``self.layout.shape`` while the tiled path used
  ``self.consts.density.shape``; both now go through one checked helper
  keyed on the extraction constants (what the forward actually consumes)
  and fail loudly on a mismatch.
"""

import numpy as np
import pytest

from repro.layout.designs import DESIGN_BUILDERS
from repro.nn import Conv2d, UNet
from repro.surrogate import NUM_FEATURE_CHANNELS
from repro.surrogate.network import CmpNeuralNetwork, HeightNormalizer


@pytest.fixture(scope="module")
def layout():
    return DESIGN_BUILDERS["A"](rows=8, cols=8, seed=3)


@pytest.fixture(scope="module")
def network(layout):
    unet = UNet(NUM_FEATURE_CHANNELS, 1, base_channels=4, depth=1, rng=0)
    return CmpNeuralNetwork(layout, unet, HeightNormalizer(2500.0, 300.0))


@pytest.fixture(scope="module")
def conv_network(layout):
    """A network whose model has no receptive_field_radius() (1x1 conv)."""
    conv = Conv2d(NUM_FEATURE_CHANNELS, 1, 1, rng=np.random.default_rng(0))
    return CmpNeuralNetwork(layout, conv, HeightNormalizer(2500.0, 300.0))


class TestReceptiveHalo:
    def test_unet_halo_covers_radius_and_aligns(self, network):
        halo = network.receptive_halo()
        radius = network.unet.receptive_field_radius()
        align = network.unet.alignment
        assert halo >= radius
        assert halo % align == 0

    def test_model_without_radius_raises(self, conv_network):
        with pytest.raises(ValueError, match="receptive_field_radius"):
            conv_network.receptive_halo()

    def test_tiled_refuses_silent_zero_halo(self, conv_network):
        # The old behaviour: no receptive_field_radius => halo 0, silently
        # wrong stitched heights.  Now it must fail loudly.
        with pytest.raises(ValueError, match="receptive_field_radius"):
            conv_network.predict_heights_tiled(tile=4)

    def test_tiled_with_explicit_halo_still_works(self, conv_network):
        # A 1x1 conv genuinely has a zero receptive field, so an explicit
        # halo=0 is exact — the caller owns that claim.
        mono = conv_network.predict_heights()
        tiled = conv_network.predict_heights_tiled(tile=4, halo=0)
        np.testing.assert_allclose(tiled, mono, rtol=1e-12, atol=1e-12)


class TestFillValidation:
    def test_grid_shape_comes_from_extraction_constants(self, network, layout):
        assert network.grid_shape == network.consts.density.shape
        assert network.grid_shape == layout.shape

    def test_monolithic_rejects_wrong_shape(self, network):
        bad = np.zeros((1, 4, 4))
        with pytest.raises(ValueError, match="layout shape"):
            network.predict_heights(bad)

    def test_tiled_rejects_wrong_shape(self, network):
        bad = np.zeros((1, 4, 4))
        with pytest.raises(ValueError, match="layout shape"):
            network.predict_heights_tiled(bad, tile=4)

    def test_both_paths_reject_wrong_ndim(self, network):
        L, N, M = network.grid_shape
        stacked = np.zeros((2, L, N, M))
        with pytest.raises(ValueError, match="layout shape"):
            network.predict_heights(stacked)
        with pytest.raises(ValueError, match="layout shape"):
            network.predict_heights_tiled(stacked, tile=4)

    def test_default_fill_is_zeros_of_grid_shape(self, network):
        zero = network.predict_heights()
        explicit = network.predict_heights(np.zeros(network.grid_shape))
        np.testing.assert_array_equal(zero, explicit)
