"""Tests for the objective layers (Eqs. 1-3, 6, 10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor
from repro.surrogate import (
    PlanarityWeights,
    height_variance,
    line_deviation,
    outliers,
    outliers_hard,
    planarity_score,
    score_function,
)

from ..nn.gradcheck import check_grad

height_arrays = hnp.arrays(
    np.float64, (2, 4, 5), elements=st.floats(-5, 5)
)


def weights():
    return PlanarityWeights(
        alpha_sigma=0.2, beta_sigma=10.0,
        alpha_line=0.2, beta_line=100.0,
        alpha_outlier=0.15, beta_outlier=5.0,
    )


class TestHeightVariance:
    def test_flat_layers_zero(self):
        h = Tensor(np.ones((3, 4, 4)) * np.arange(1, 4)[:, None, None])
        assert height_variance(h).item() == pytest.approx(0.0)

    def test_matches_numpy_per_layer_sum(self):
        rng = np.random.default_rng(0)
        h = rng.normal(size=(3, 5, 6))
        expected = sum(np.var(h[l]) for l in range(3))
        assert height_variance(Tensor(h)).item() == pytest.approx(expected)

    def test_mean_shift_invariant(self):
        rng = np.random.default_rng(1)
        h = rng.normal(size=(2, 4, 4))
        v1 = height_variance(Tensor(h)).item()
        v2 = height_variance(Tensor(h + 100.0)).item()
        assert v1 == pytest.approx(v2)

    def test_gradient(self):
        check_grad(height_variance, np.random.default_rng(2).normal(size=(2, 3, 3)))

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            height_variance(Tensor(np.ones((4, 4))))


class TestLineDeviation:
    def test_column_uniform_zero(self):
        """Heights constant within each column -> zero line deviation."""
        h = np.tile(np.arange(5.0), (4, 1))[None]  # (1, 4, 5)
        assert line_deviation(Tensor(h)).item() == pytest.approx(0.0)

    def test_matches_reference(self):
        rng = np.random.default_rng(3)
        h = rng.normal(size=(2, 4, 5))
        expected = 0.0
        for l in range(2):
            col_mean = h[l].mean(axis=0, keepdims=True)
            expected += np.abs(h[l] - col_mean).sum()
        assert line_deviation(Tensor(h)).item() == pytest.approx(expected)

    def test_gradient_away_from_ties(self):
        rng = np.random.default_rng(4)
        h = rng.normal(size=(1, 3, 3)) * 3.0
        check_grad(line_deviation, h, eps=1e-7, rtol=1e-3, atol=1e-5)

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            line_deviation(Tensor(np.ones(4)))


class TestOutliers:
    def test_no_outliers_for_uniform(self):
        h = Tensor(np.ones((1, 5, 5)))
        assert outliers(h).item() == pytest.approx(0.0, abs=1.0)

    def test_detects_spike(self):
        h = np.zeros((1, 10, 10))
        h[0, 5, 5] = 100.0
        smooth = outliers(Tensor(h), eta=1.0).item()
        hard = outliers_hard(h)
        assert hard > 0
        assert smooth == pytest.approx(hard, rel=0.1)

    def test_smooth_approximates_hard(self):
        rng = np.random.default_rng(5)
        h = rng.normal(size=(2, 12, 12))
        h[0, 0, 0] = 8.0  # force an outlier
        smooth = outliers(Tensor(h), eta=10.0).item()
        hard = outliers_hard(h)
        assert smooth == pytest.approx(hard, abs=0.8)

    def test_eta_must_be_positive(self):
        with pytest.raises(ValueError):
            outliers(Tensor(np.ones((1, 2, 2))), eta=0.0)

    def test_gradient(self):
        rng = np.random.default_rng(6)
        check_grad(lambda t: outliers(t, eta=2.0), rng.normal(size=(1, 4, 4)),
                   eps=1e-6, rtol=1e-3, atol=1e-6)

    def test_hard_reference_nonnegative(self):
        rng = np.random.default_rng(7)
        assert outliers_hard(rng.normal(size=(3, 6, 6))) >= 0.0


class TestScoreFunction:
    def test_float_values(self):
        assert score_function(0.0, 10.0) == 1.0
        assert score_function(5.0, 10.0) == 0.5
        assert score_function(20.0, 10.0) == 0.0
        assert score_function(-5.0, 10.0) == 1.0  # capped

    def test_tensor_values(self):
        t = Tensor(np.array([0.0, 5.0, 20.0, -5.0]))
        np.testing.assert_allclose(score_function(t, 10.0).data, [1, 0.5, 0, 1])

    def test_gradient_inside_band(self):
        t = Tensor(np.array([5.0]), requires_grad=True)
        score_function(t, 10.0).sum().backward()
        np.testing.assert_allclose(t.grad, [-0.1])

    def test_gradient_zero_when_saturated(self):
        t = Tensor(np.array([50.0]), requires_grad=True)
        score_function(t, 10.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0])

    def test_beta_positive_required(self):
        with pytest.raises(ValueError):
            score_function(1.0, 0.0)


class TestPlanarityScore:
    def test_flat_profile_maximal(self):
        h = Tensor(np.ones((2, 6, 6)) * 5.0)
        s, br = planarity_score(h, weights())
        total_alpha = 0.2 + 0.2 + 0.15
        assert s.item() == pytest.approx(total_alpha)
        assert br.score_sigma == 1.0
        assert br.score_line == 1.0

    def test_breakdown_consistent(self):
        rng = np.random.default_rng(8)
        h = Tensor(rng.normal(size=(2, 6, 6)))
        s, br = planarity_score(h, weights())
        assert s.item() == pytest.approx(br.s_plan)
        combined = (
            0.2 * br.score_sigma + 0.2 * br.score_line + 0.15 * br.score_outlier
        )
        assert s.item() == pytest.approx(combined)

    def test_gradient_flows_to_heights(self):
        rng = np.random.default_rng(9)
        h = Tensor(rng.normal(size=(2, 6, 6)), requires_grad=True)
        s, _ = planarity_score(h, weights())
        s.backward()
        assert h.grad is not None
        assert np.any(h.grad != 0)

    @given(height_arrays)
    @settings(max_examples=20, deadline=None)
    def test_property_score_bounded(self, h):
        s, br = planarity_score(Tensor(h), weights())
        assert -1e-9 <= s.item() <= 0.55 + 1e-9
        for val in (br.score_sigma, br.score_line, br.score_outlier):
            assert -1e-9 <= val <= 1.0 + 1e-9

    @given(height_arrays)
    @settings(max_examples=20, deadline=None)
    def test_property_flatter_never_worse_sigma(self, h):
        """Scaling deviations down never lowers the variance score."""
        mean = h.mean(axis=(1, 2), keepdims=True)
        flatter = mean + 0.5 * (h - mean)
        _, br1 = planarity_score(Tensor(h), weights())
        _, br2 = planarity_score(Tensor(flatter), weights())
        assert br2.score_sigma >= br1.score_sigma - 1e-9
