"""Parallel teacher-data generation must be byte-identical to serial.

Layout assembly stays in the parent with the one seeded RNG stream; only
the deterministic simulations are farmed out, so any worker count yields
the exact same dataset.
"""

import numpy as np
import pytest

from repro.layout import make_design_a, make_design_b
from repro.surrogate import build_dataset


@pytest.fixture(scope="module")
def sources():
    return [make_design_a(rows=10, cols=10), make_design_b(rows=10, cols=10)]


class TestParallelBuildDataset:
    def test_byte_identical_to_serial(self, sources):
        serial = build_dataset(sources, count=3, rows=8, cols=8, seed=3)
        parallel = build_dataset(sources, count=3, rows=8, cols=8, seed=3,
                                 n_workers=2)
        assert serial.inputs.tobytes() == parallel.inputs.tobytes()
        assert serial.targets.tobytes() == parallel.targets.tobytes()
        assert serial.normalizer == parallel.normalizer

    def test_one_worker_is_serial_path(self, sources):
        serial = build_dataset(sources, count=2, rows=8, cols=8, seed=1)
        same = build_dataset(sources, count=2, rows=8, cols=8, seed=1,
                             n_workers=1)
        np.testing.assert_array_equal(serial.inputs, same.inputs)
        np.testing.assert_array_equal(serial.targets, same.targets)

    def test_workers_capped_by_count(self, sources):
        # More workers than samples must not hang or reorder anything.
        serial = build_dataset(sources, count=2, rows=8, cols=8, seed=2)
        parallel = build_dataset(sources, count=2, rows=8, cols=8, seed=2,
                                 n_workers=8)
        assert serial.targets.tobytes() == parallel.targets.tobytes()

    def test_invalid_workers_rejected(self, sources):
        with pytest.raises(ValueError):
            build_dataset(sources, count=2, rows=8, cols=8, n_workers=0)


class TestBatchedBuildDataset:
    """Micro-batched teacher simulation is byte-identical to unbatched —
    the batched simulator contract, observed end to end."""

    def test_byte_identical_across_sim_batch(self, sources):
        base = build_dataset(sources, count=5, rows=8, cols=8, seed=4,
                             sim_batch=1)
        for sim_batch in (2, 5, 8):
            batched = build_dataset(sources, count=5, rows=8, cols=8,
                                    seed=4, sim_batch=sim_batch)
            assert base.inputs.tobytes() == batched.inputs.tobytes()
            assert base.targets.tobytes() == batched.targets.tobytes()
            assert base.normalizer == batched.normalizer

    def test_composes_with_workers(self, sources):
        serial = build_dataset(sources, count=4, rows=8, cols=8, seed=5,
                               sim_batch=1)
        both = build_dataset(sources, count=4, rows=8, cols=8, seed=5,
                             sim_batch=2, n_workers=2)
        assert serial.inputs.tobytes() == both.inputs.tobytes()
        assert serial.targets.tobytes() == both.targets.tobytes()

    def test_invalid_sim_batch_rejected(self, sources):
        with pytest.raises(ValueError):
            build_dataset(sources, count=2, rows=8, cols=8, sim_batch=0)
