"""Tests for surrogate checkpointing (save/load + rebinding)."""

import json

import numpy as np
import pytest

from repro.layout import make_design_a, make_design_b
from repro.surrogate import (
    PlanarityWeights,
    bind_surrogate,
    load_surrogate,
    load_surrogate_bundle,
    save_surrogate,
)


class TestSurrogatePersistence:
    def test_roundtrip_predictions_identical(self, trained_surrogate, tmp_path,
                                             small_layout):
        net = trained_surrogate
        save_surrogate(tmp_path / "ckpt", net.unet, net.normalizer,
                       base_channels=6, depth=2)
        back = load_surrogate(tmp_path / "ckpt", small_layout)
        fill = 0.4 * small_layout.slack_stack()
        np.testing.assert_allclose(
            back.predict_heights(fill), net.predict_heights(fill)
        )

    def test_rebind_to_other_layout(self, trained_surrogate, tmp_path):
        """Fully convolutional: a checkpoint binds to any layout size."""
        net = trained_surrogate
        save_surrogate(tmp_path / "ckpt", net.unet, net.normalizer,
                       base_channels=6, depth=2)
        other = make_design_b(rows=12, cols=14)
        back = load_surrogate(tmp_path / "ckpt", other)
        heights = back.predict_heights()
        assert heights.shape == other.shape
        assert np.all(np.isfinite(heights))

    def test_evaluate_after_reload(self, trained_surrogate, tmp_path):
        net = trained_surrogate
        save_surrogate(tmp_path / "ckpt", net.unet, net.normalizer,
                       base_channels=6, depth=2)
        layout = make_design_a(rows=8, cols=8)
        back = load_surrogate(tmp_path / "ckpt", layout)
        w = PlanarityWeights(0.2, 1e4, 0.2, 1e5, 0.15, 100.0)
        ev = back.evaluate(np.zeros(layout.shape), w)
        assert np.isfinite(ev.s_plan)
        assert ev.gradient.shape == layout.shape

    def test_missing_checkpoint_raises(self, tmp_path, small_layout):
        with pytest.raises(FileNotFoundError):
            load_surrogate(tmp_path / "nope", small_layout)


class TestDiagnostics:
    """Loading failures name the attempted path; provenance is recorded."""

    @pytest.fixture()
    def checkpoint(self, trained_surrogate, tmp_path):
        net = trained_surrogate
        return save_surrogate(tmp_path / "ckpt", net.unet, net.normalizer,
                              base_channels=6, depth=2)

    def test_missing_directory_names_path(self, tmp_path, small_layout):
        missing = tmp_path / "nowhere"
        with pytest.raises(FileNotFoundError, match="nowhere"):
            load_surrogate(missing, small_layout)

    def test_partial_checkpoint_names_missing_file(self, checkpoint,
                                                   small_layout):
        (checkpoint / "unet.npz").unlink()
        with pytest.raises(FileNotFoundError) as excinfo:
            load_surrogate(checkpoint, small_layout)
        message = str(excinfo.value)
        assert "partial surrogate checkpoint" in message
        assert str(checkpoint) in message
        assert "unet.npz" in message

    def test_corrupt_metadata_raises_value_error(self, checkpoint,
                                                 small_layout):
        (checkpoint / "surrogate.json").write_text("{broken")
        with pytest.raises(ValueError, match="corrupt"):
            load_surrogate(checkpoint, small_layout)

    def test_metadata_missing_key_raises_value_error(self, checkpoint,
                                                     small_layout):
        meta = json.loads((checkpoint / "surrogate.json").read_text())
        del meta["arch"]
        (checkpoint / "surrogate.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="missing key"):
            load_surrogate(checkpoint, small_layout)

    def test_numpy_version_recorded(self, checkpoint):
        meta = json.loads((checkpoint / "surrogate.json").read_text())
        assert meta["numpy"] == np.__version__

    def test_numpy_mismatch_warns(self, checkpoint, small_layout):
        meta = json.loads((checkpoint / "surrogate.json").read_text())
        meta["numpy"] = "0.0.1"
        (checkpoint / "surrogate.json").write_text(json.dumps(meta))
        with pytest.warns(RuntimeWarning, match="0.0.1"):
            load_surrogate(checkpoint, small_layout)

    def test_matching_numpy_does_not_warn(self, checkpoint, small_layout):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            load_surrogate(checkpoint, small_layout)


class TestBundleSplit:
    """Warm-load once, bind many times (the repro.serve registry path)."""

    def test_bundle_binds_to_multiple_layouts(self, trained_surrogate,
                                              tmp_path):
        net = trained_surrogate
        save_surrogate(tmp_path / "ckpt", net.unet, net.normalizer,
                       base_channels=6, depth=2)
        bundle = load_surrogate_bundle(tmp_path / "ckpt")
        assert bundle.arch["base_channels"] == 6
        for layout in (make_design_a(rows=8, cols=8),
                       make_design_b(rows=12, cols=10)):
            bound = bind_surrogate(bundle, layout)
            assert bound.predict_heights().shape == layout.shape

    def test_bound_matches_direct_load(self, trained_surrogate, tmp_path,
                                       small_layout):
        net = trained_surrogate
        save_surrogate(tmp_path / "ckpt", net.unet, net.normalizer,
                       base_channels=6, depth=2)
        direct = load_surrogate(tmp_path / "ckpt", small_layout)
        via_bundle = bind_surrogate(
            load_surrogate_bundle(tmp_path / "ckpt"), small_layout)
        fill = 0.3 * small_layout.slack_stack()
        np.testing.assert_array_equal(
            via_bundle.predict_heights(fill), direct.predict_heights(fill))


class TestAtomicWrites:
    """Crash-safety and byte-determinism of checkpoint persistence."""

    def test_overwrite_crash_leaves_old_checkpoint_intact(
            self, trained_surrogate, tmp_path, small_layout, monkeypatch):
        """A crash between temp write and rename never tears a file."""
        import os as os_module

        from repro.surrogate import persist as persist_module

        net = trained_surrogate
        directory = save_surrogate(tmp_path / "ckpt", net.unet,
                                   net.normalizer, base_channels=6, depth=2)
        before = {name: (directory / name).read_bytes()
                  for name in ("surrogate.json", "unet.npz")}

        real_replace = os_module.replace

        def crash_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(persist_module.os, "replace", crash_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_surrogate(directory, net.unet, net.normalizer,
                           base_channels=6, depth=2,
                           extra_meta={"generation": 2})
        monkeypatch.setattr(persist_module.os, "replace", real_replace)

        # Old bytes untouched, no temp litter, checkpoint still loads.
        for name, payload in before.items():
            assert (directory / name).read_bytes() == payload
        assert sorted(p.name for p in directory.iterdir()) \
            == ["surrogate.json", "unet.npz"]
        load_surrogate(directory, small_layout)

    def test_weights_land_before_metadata(self, trained_surrogate,
                                          tmp_path, monkeypatch):
        """surrogate.json is written last — it is the completion marker."""
        from repro.surrogate import persist as persist_module

        order = []
        real_write = persist_module._atomic_write_bytes

        def spy(path, data):
            order.append(path.name)
            real_write(path, data)

        monkeypatch.setattr(persist_module, "_atomic_write_bytes", spy)
        net = trained_surrogate
        save_surrogate(tmp_path / "ckpt", net.unet, net.normalizer,
                       base_channels=6, depth=2)
        assert order == ["unet.npz", "surrogate.json"]

    def test_deterministic_bytes_across_saves(self, trained_surrogate,
                                              tmp_path):
        """Same weights always serialize to identical bytes (no zip
        wall-clock timestamps), which the lifecycle's byte-identical
        retrain guarantee builds on."""
        net = trained_surrogate
        a = save_surrogate(tmp_path / "a", net.unet, net.normalizer,
                           base_channels=6, depth=2)
        b = save_surrogate(tmp_path / "b", net.unet, net.normalizer,
                           base_channels=6, depth=2)
        assert (a / "unet.npz").read_bytes() == (b / "unet.npz").read_bytes()
        assert (a / "surrogate.json").read_bytes() \
            == (b / "surrogate.json").read_bytes()

    def test_extra_meta_cannot_shadow_reserved_keys(self, trained_surrogate,
                                                    tmp_path):
        net = trained_surrogate
        with pytest.raises(ValueError, match="reserved"):
            save_surrogate(tmp_path / "ckpt", net.unet, net.normalizer,
                           base_channels=6, depth=2,
                           extra_meta={"arch": {}})
