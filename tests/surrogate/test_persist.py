"""Tests for surrogate checkpointing (save/load + rebinding)."""

import numpy as np
import pytest

from repro.layout import make_design_a, make_design_b
from repro.surrogate import PlanarityWeights, load_surrogate, save_surrogate


class TestSurrogatePersistence:
    def test_roundtrip_predictions_identical(self, trained_surrogate, tmp_path,
                                             small_layout):
        net = trained_surrogate
        save_surrogate(tmp_path / "ckpt", net.unet, net.normalizer,
                       base_channels=6, depth=2)
        back = load_surrogate(tmp_path / "ckpt", small_layout)
        fill = 0.4 * small_layout.slack_stack()
        np.testing.assert_allclose(
            back.predict_heights(fill), net.predict_heights(fill)
        )

    def test_rebind_to_other_layout(self, trained_surrogate, tmp_path):
        """Fully convolutional: a checkpoint binds to any layout size."""
        net = trained_surrogate
        save_surrogate(tmp_path / "ckpt", net.unet, net.normalizer,
                       base_channels=6, depth=2)
        other = make_design_b(rows=12, cols=14)
        back = load_surrogate(tmp_path / "ckpt", other)
        heights = back.predict_heights()
        assert heights.shape == other.shape
        assert np.all(np.isfinite(heights))

    def test_evaluate_after_reload(self, trained_surrogate, tmp_path):
        net = trained_surrogate
        save_surrogate(tmp_path / "ckpt", net.unet, net.normalizer,
                       base_channels=6, depth=2)
        layout = make_design_a(rows=8, cols=8)
        back = load_surrogate(tmp_path / "ckpt", layout)
        w = PlanarityWeights(0.2, 1e4, 0.2, 1e5, 0.15, 100.0)
        ev = back.evaluate(np.zeros(layout.shape), w)
        assert np.isfinite(ev.s_plan)
        assert ev.gradient.shape == layout.shape

    def test_missing_checkpoint_raises(self, tmp_path, small_layout):
        with pytest.raises(FileNotFoundError):
            load_surrogate(tmp_path / "nope", small_layout)
