"""Tiled full-chip inference vs the monolithic forward.

``predict_heights_tiled`` stitches halo-padded tile forwards; with tile
origins on the pooling alignment and a halo covering the receptive
field, every stitched window must see the identical computation as the
monolithic pass, so the two paths agree to floating-point precision
(the ISSUE acceptance bound is 1e-6 relative; in practice the match is
exact to the last ulp).
"""

import numpy as np
import pytest

from repro.layout import make_design_a, make_design_b
from repro.nn import UNet
from repro.surrogate import NUM_FEATURE_CHANNELS, CmpNeuralNetwork, HeightNormalizer


def _network(layout, depth=1, up_mode="upsample", seed=0):
    unet = UNet(in_channels=NUM_FEATURE_CHANNELS, out_channels=1,
                base_channels=4, depth=depth, rng=seed, up_mode=up_mode)
    return CmpNeuralNetwork(layout, unet, HeightNormalizer(mean=6000.0, std=40.0))


def _random_fill(layout, seed=5):
    rng = np.random.default_rng(seed)
    slack = layout.slack_stack()
    return rng.random(slack.shape) * slack


def _rel_err(tiled, mono):
    return float(np.max(np.abs(tiled - mono)) / np.max(np.abs(mono)))


class TestTiledMatchesMonolithic:
    @pytest.mark.parametrize("tile", [16, 32])
    def test_square_grid_depth1(self, tile):
        net = _network(make_design_a(rows=48, cols=48))
        fill = _random_fill(net.layout)
        mono = net.predict_heights(fill)
        tiled = net.predict_heights_tiled(fill, tile=tile)
        assert _rel_err(tiled, mono) <= 1e-6

    def test_rectangular_grid_depth2(self):
        net = _network(make_design_b(rows=48, cols=40), depth=2)
        fill = _random_fill(net.layout)
        mono = net.predict_heights(fill)
        tiled = net.predict_heights_tiled(fill, tile=16)
        assert _rel_err(tiled, mono) <= 1e-6

    def test_odd_grid_not_multiple_of_alignment(self):
        # 50x46 is not a multiple of 2**depth: the monolithic forward
        # zero-pads to the alignment and so must every boundary tile.
        net = _network(make_design_a(rows=50, cols=46))
        fill = _random_fill(net.layout)
        mono = net.predict_heights(fill)
        tiled = net.predict_heights_tiled(fill, tile=16)
        assert _rel_err(tiled, mono) <= 1e-6

    def test_transpose_up_mode(self):
        net = _network(make_design_a(rows=32, cols=32), up_mode="transpose")
        fill = _random_fill(net.layout)
        mono = net.predict_heights(fill)
        tiled = net.predict_heights_tiled(fill, tile=16)
        assert _rel_err(tiled, mono) <= 1e-6

    def test_default_fill_is_zero(self):
        net = _network(make_design_a(rows=32, cols=32))
        np.testing.assert_allclose(
            net.predict_heights_tiled(tile=16), net.predict_heights(),
            rtol=1e-6,
        )

    def test_tile_larger_than_chip(self):
        net = _network(make_design_a(rows=24, cols=24))
        fill = _random_fill(net.layout)
        np.testing.assert_allclose(
            net.predict_heights_tiled(fill, tile=256),
            net.predict_heights(fill), rtol=1e-6,
        )

    def test_explicit_halo_rounded_to_alignment(self):
        net = _network(make_design_a(rows=32, cols=32))
        fill = _random_fill(net.layout)
        mono = net.predict_heights(fill)
        # An over-generous halo must stay exact (only slower).
        tiled = net.predict_heights_tiled(fill, tile=16, halo=15)
        assert _rel_err(tiled, mono) <= 1e-6


class TestValidation:
    def test_rejects_stacked_fills(self):
        net = _network(make_design_a(rows=16, cols=16))
        with pytest.raises(ValueError):
            net.predict_heights_tiled(np.zeros((2, *net.layout.shape)))

    def test_rejects_wrong_grid_shape(self):
        net = _network(make_design_a(rows=16, cols=16))
        L, N, M = net.layout.shape
        with pytest.raises(ValueError):
            net.predict_heights_tiled(np.zeros((L, N + 1, M)))

    def test_rejects_negative_halo(self):
        net = _network(make_design_a(rows=16, cols=16))
        with pytest.raises(ValueError):
            net.predict_heights_tiled(tile=8, halo=-1)

    def test_rejects_nonpositive_tile(self):
        net = _network(make_design_a(rows=16, cols=16))
        with pytest.raises(ValueError):
            net.predict_heights_tiled(tile=0)


class TestReceptiveFieldMetadata:
    def test_alignment_is_pooling_factor(self):
        for depth in (1, 2):
            unet = UNet(in_channels=2, out_channels=1, base_channels=4,
                        depth=depth, rng=0)
            assert unet.alignment == 2**depth

    def test_exact_radius_known_values(self):
        # Span recursion over 3x3 double-convs: depth 1 -> 10, depth 2 -> 25
        # (upsample mode; the bilinear up-path convs widen the field).
        unet1 = UNet(in_channels=2, out_channels=1, base_channels=4,
                     depth=1, rng=0)
        unet2 = UNet(in_channels=2, out_channels=1, base_channels=4,
                     depth=2, rng=0)
        assert unet1.receptive_field_radius() == 10
        assert unet2.receptive_field_radius() == 25

    def test_transpose_mode_is_narrower(self):
        up = UNet(in_channels=2, out_channels=1, base_channels=4,
                  depth=1, rng=0, up_mode="upsample")
        tr = UNet(in_channels=2, out_channels=1, base_channels=4,
                  depth=1, rng=0, up_mode="transpose")
        # k=s=2 transpose convs add no span; the 3x3 up-path conv does.
        assert tr.receptive_field_radius() < up.receptive_field_radius()
