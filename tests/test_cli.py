"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.insertion import load_shapes
from repro.layout import load_layout


@pytest.fixture()
def design_file(tmp_path):
    path = tmp_path / "a.json"
    rc = main(["gen-design", "A", "--rows", "8", "--cols", "8",
               "--seed", "3", "-o", str(path)])
    assert rc == 0
    return path


class TestGenDesign:
    def test_writes_layout(self, design_file):
        layout = load_layout(design_file)
        assert layout.grid.shape == (8, 8)
        assert layout.num_layers == 3

    def test_all_designs(self, tmp_path):
        for key in ("A", "B", "C"):
            out = tmp_path / f"{key}.json"
            assert main(["gen-design", key, "--rows", "8", "--cols", "8",
                         "-o", str(out)]) == 0
            assert out.exists()

    def test_default_size(self, tmp_path):
        out = tmp_path / "a.json"
        assert main(["gen-design", "A", "-o", str(out)]) == 0
        assert load_layout(out).grid.rows >= 8


class TestSimulate:
    def test_prints_metrics(self, design_file, capsys):
        assert main(["simulate", str(design_file)]) == 0
        out = capsys.readouterr().out
        assert "post-CMP dH" in out
        assert "height variance" in out

    def test_polish_time_override(self, design_file, capsys):
        assert main(["simulate", str(design_file),
                     "--polish-time", "10"]) == 0
        assert "post-CMP dH" in capsys.readouterr().out


class TestFill:
    def test_lin_with_outputs(self, design_file, tmp_path, capsys):
        fill_out = tmp_path / "fill.npz"
        shapes_out = tmp_path / "shapes.json"
        rc = main(["fill", str(design_file), "--method", "lin",
                   "--fill-out", str(fill_out),
                   "--shapes-out", str(shapes_out)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulator verdict" in out
        fill = np.load(fill_out)["fill"]
        assert fill.shape == (3, 8, 8)
        shapes = load_shapes(shapes_out)
        assert len(shapes) > 0

    def test_tao(self, design_file, capsys):
        assert main(["fill", str(design_file), "--method", "tao"]) == 0
        assert "quality" in capsys.readouterr().out

    def test_neurfill_pkb_small_budget(self, design_file, capsys):
        rc = main(["fill", str(design_file), "--method", "neurfill-pkb",
                   "--train-samples", "8", "--train-epochs", "4"])
        assert rc == 0
        assert "neurfill-pkb" in capsys.readouterr().out


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_method_errors(self, design_file):
        with pytest.raises(SystemExit):
            main(["fill", str(design_file), "--method", "magic"])
