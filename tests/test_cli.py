"""Tests for the command-line interface."""

import os

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.insertion import load_shapes
from repro.layout import load_layout


@pytest.fixture()
def design_file(tmp_path):
    path = tmp_path / "a.json"
    rc = main(["gen-design", "A", "--rows", "8", "--cols", "8",
               "--seed", "3", "-o", str(path)])
    assert rc == 0
    return path


class TestGenDesign:
    def test_writes_layout(self, design_file):
        layout = load_layout(design_file)
        assert layout.grid.shape == (8, 8)
        assert layout.num_layers == 3

    def test_all_designs(self, tmp_path):
        for key in ("A", "B", "C"):
            out = tmp_path / f"{key}.json"
            assert main(["gen-design", key, "--rows", "8", "--cols", "8",
                         "-o", str(out)]) == 0
            assert out.exists()

    def test_default_size(self, tmp_path):
        out = tmp_path / "a.json"
        assert main(["gen-design", "A", "-o", str(out)]) == 0
        assert load_layout(out).grid.rows >= 8


class TestSimulate:
    def test_prints_metrics(self, design_file, capsys):
        assert main(["simulate", str(design_file)]) == 0
        out = capsys.readouterr().out
        assert "post-CMP dH" in out
        assert "height variance" in out

    def test_polish_time_override(self, design_file, capsys):
        assert main(["simulate", str(design_file),
                     "--polish-time", "10"]) == 0
        assert "post-CMP dH" in capsys.readouterr().out


class TestFill:
    def test_lin_with_outputs(self, design_file, tmp_path, capsys):
        fill_out = tmp_path / "fill.npz"
        shapes_out = tmp_path / "shapes.json"
        rc = main(["fill", str(design_file), "--method", "lin",
                   "--fill-out", str(fill_out),
                   "--shapes-out", str(shapes_out)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulator verdict" in out
        fill = np.load(fill_out)["fill"]
        assert fill.shape == (3, 8, 8)
        shapes = load_shapes(shapes_out)
        assert len(shapes) > 0

    def test_tao(self, design_file, capsys):
        assert main(["fill", str(design_file), "--method", "tao"]) == 0
        assert "quality" in capsys.readouterr().out

    def test_neurfill_pkb_small_budget(self, design_file, capsys):
        rc = main(["fill", str(design_file), "--method", "neurfill-pkb",
                   "--train-samples", "8", "--train-epochs", "4"])
        assert rc == 0
        assert "neurfill-pkb" in capsys.readouterr().out


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_method_errors(self, design_file):
        with pytest.raises(SystemExit):
            main(["fill", str(design_file), "--method", "magic"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestErrorHandling:
    """Bad inputs exit non-zero with a one-line message, no traceback."""

    @pytest.mark.parametrize("argv", [
        ["simulate", "no-such-layout.json"],
        ["fill", "no-such-layout.json", "--method", "lin"],
        ["compare", "no-such-layout.json", "--skip-cai"],
        ["train-surrogate", "no-such-layout.json", "-o", "ckpt"],
    ])
    def test_missing_layout_is_one_line_error(self, argv, capsys, tmp_path,
                                              monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: ")
        assert "no-such-layout.json" in err
        assert len(err.strip().splitlines()) == 1

    def test_invalid_json_layout(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["simulate", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_missing_model_checkpoint(self, design_file, tmp_path, capsys):
        missing = tmp_path / "no-ckpt"
        rc = main(["fill", str(design_file), "--method", "neurfill-pkb",
                   "--model", str(missing)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.strip().splitlines()[-1].startswith("repro: error: ")
        assert str(missing) in err


class TestEco:
    @pytest.fixture()
    def checkpoint(self, tmp_path):
        from repro.nn import UNet
        from repro.surrogate import (
            NUM_FEATURE_CHANNELS,
            HeightNormalizer,
            save_surrogate,
        )

        unet = UNet(NUM_FEATURE_CHANNELS, 1, base_channels=4, depth=2, rng=0)
        return str(save_surrogate(tmp_path / "ckpt", unet,
                                  HeightNormalizer(2500.0, 300.0),
                                  base_channels=4, depth=2))

    @pytest.fixture()
    def edited_file(self, design_file, tmp_path):
        from repro.layout import edit_layout, save_layout

        edited = edit_layout(load_layout(design_file), 1,
                             slice(2, 4), slice(2, 4))
        path = tmp_path / "a_eco.json"
        save_layout(edited, str(path))
        return path

    def test_incremental_refill(self, design_file, edited_file, checkpoint,
                                tmp_path, capsys):
        parent_npz = tmp_path / "fill.npz"
        assert main(["fill", str(design_file), "--model", checkpoint,
                     "--fill-out", str(parent_npz)]) == 0
        eco_npz = tmp_path / "fill_eco.npz"
        rc = main(["eco", str(design_file), str(edited_file),
                   "--parent-fill", str(parent_npz),
                   "--model", checkpoint, "--fill-out", str(eco_npz)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "neurfill-eco" in out
        assert "eco: dirty=4/" in out
        with np.load(eco_npz) as data:
            assert data["fill"].shape == load_layout(edited_file).shape

    def test_empty_edit_reuses_parent(self, design_file, checkpoint,
                                      tmp_path, capsys):
        parent_npz = tmp_path / "fill.npz"
        assert main(["fill", str(design_file), "--model", checkpoint,
                     "--fill-out", str(parent_npz)]) == 0
        rc = main(["eco", str(design_file), str(design_file),
                   "--parent-fill", str(parent_npz), "--model", checkpoint])
        assert rc == 0
        assert "parent solution reused as-is" in capsys.readouterr().out

    def test_missing_parent_fill_is_one_line_error(self, design_file,
                                                   edited_file, checkpoint,
                                                   tmp_path, capsys):
        rc = main(["eco", str(design_file), str(edited_file),
                   "--parent-fill", str(tmp_path / "nope.npz"),
                   "--model", checkpoint])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.strip().splitlines()[-1].startswith("repro: error: ")
        assert "parent fill file not found" in err


class TestTrainSurrogate:
    def test_train_and_reuse(self, design_file, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        rc = main(["train-surrogate", str(design_file), "-o", str(ckpt),
                   "--train-samples", "6", "--train-epochs", "2"])
        assert rc == 0
        assert (ckpt / "surrogate.json").is_file()
        assert (ckpt / "unet.npz").is_file()
        rc = main(["fill", str(design_file), "--method", "neurfill-pkb",
                   "--model", str(ckpt)])
        assert rc == 0
        assert "neurfill-pkb" in capsys.readouterr().out


class TestServePipe:
    """End-to-end: `repro serve --pipe` driven by ServeClient."""

    def test_pipe_serve_round_trip(self, design_file, tmp_path):
        from repro.serve import ServeClient

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")

        fill_npz = tmp_path / "oneshot.npz"
        assert main(["fill", str(design_file), "--method", "lin",
                     "--fill-out", str(fill_npz)]) == 0
        oneshot = np.load(fill_npz)["fill"]

        with ServeClient.pipe(env=env) as client:
            assert client.ping(timeout=30)
            done = client.fill(layout_path=str(design_file), method="lin",
                               return_fill=True, timeout=120)
            served = np.array(done["result"]["fill"])
            # served results are bitwise what the one-shot CLI computes
            assert np.array_equal(served, oneshot)
            stats = client.stats(timeout=30)
            assert stats["counters"]["completed"] >= 1
            assert stats["queue_depth"] == 0
            client.shutdown(timeout=30)
            assert client.close() == 0

    @pytest.mark.parametrize("argv", [
        ["--worker-mode", "process", "--workers", "2"],
        ["--shards", "2", "--workers", "1"],
    ], ids=["process-pool", "sharded"])
    def test_pipe_serve_parity_process_and_sharded(self, design_file,
                                                   tmp_path, argv):
        """Process-pool and sharded fleets return bitwise what the
        one-shot CLI computes (same contract as thread mode)."""
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs the fork start method")
        from repro.serve import ServeClient

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")

        fill_npz = tmp_path / "oneshot.npz"
        assert main(["fill", str(design_file), "--method", "lin",
                     "--fill-out", str(fill_npz)]) == 0
        oneshot = np.load(fill_npz)["fill"]

        with ServeClient.pipe(argv=argv, env=env) as client:
            assert client.ping(timeout=60)
            done = client.fill(layout_path=str(design_file), method="lin",
                               return_fill=True, timeout=180)
            served = np.array(done["result"]["fill"])
            assert np.array_equal(served, oneshot)
            stats = client.stats(timeout=30)
            assert stats["counters"]["completed"] >= 1
            client.shutdown(timeout=60)
            assert client.close() == 0

    def test_pipe_serve_rejects_bad_method(self, design_file):
        from repro.serve import ServeClient, ServeError

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        with ServeClient.pipe(env=env) as client:
            with pytest.raises(ServeError, match="unknown method"):
                client.fill(layout_path=str(design_file), method="magic",
                            timeout=30)
            client.shutdown(timeout=30)
            assert client.close() == 0
