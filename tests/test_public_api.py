"""Smoke tests for the top-level public API surface."""

import numpy as np


def test_top_level_imports():
    import repro

    assert repro.__version__
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_subpackage_all_exports_resolve():
    import repro.baselines
    import repro.cmp
    import repro.core
    import repro.evaluation
    import repro.layout
    import repro.nn
    import repro.optimize
    import repro.surrogate

    for module in (repro.cmp, repro.core, repro.evaluation, repro.layout,
                   repro.nn, repro.optimize, repro.surrogate,
                   repro.baselines):
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{module.__name__}.{name}"


def test_readme_style_flow(simulator, small_layout, small_problem,
                           trained_surrogate):
    """The README code path works end to end."""
    from repro import NeurFill, evaluate_solution

    neurfill = NeurFill(small_problem, trained_surrogate, simulator=simulator)
    result = neurfill.run_pkb(num_candidates=3)
    score = evaluate_solution(small_problem, result.fill, "neurfill", simulator)
    assert 0.0 <= score.quality <= 1.0
    assert 0.0 <= score.overall <= 1.0
    assert np.all(result.fill >= 0)
